// Package driver implements distributed, resumable corpus mining: a
// map/reduce split of the §3.3 pipeline where the corpus is partitioned
// into deterministic repo shards, map workers (in-process goroutines or
// namer-mine -worker child processes speaking JSON lines over
// stdin/stdout) emit per-shard checkpoint artifacts, and a reduce phase
// folds the shards back into knowledge byte-identical to a
// single-process mine at any shard count.
//
// The protocol has two map rounds with a count-merge barrier between
// them, because pass 2 of Algorithm 1 (transaction generation) needs the
// dataset-wide path frequencies for both its MinPathCount filter and its
// canonical item ordering:
//
//	map round 1  parse + analyze each shard's files, extract statement
//	             path lists and shard-local path counts
//	             → shard-NNNN.stmts.ck
//	reduce 1     sum the per-shard counts, mine confusing pairs from the
//	             commit history → counts.ck
//	map round 2  rebuild each shard's transactions against the global
//	             counts, grow one FP subtree per pattern type
//	             → shard-NNNN.trees.ck
//	reduce 2     remap-merge the shard trees, run FP-growth and the
//	             satisfaction-ratio prune once, assemble the artifact
//
// Every artifact is a CRC-checked, atomically-written checkpoint
// (knowledge.WriteCheckpoint) that embeds the content hash of the corpus
// slice it was computed from, so a restarted driver re-runs exactly the
// shards whose checkpoints are missing, corrupt, or stale.
package driver

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"namer/internal/ast"
	"namer/internal/parallel"
)

// shardPlan is one corpus shard: a contiguous run of repositories'
// files, in the exact order a single-process LoadDirectory would visit
// them, plus the content hash of the slice.
type shardPlan struct {
	files []string // corpus-relative paths, lexical walk order
	hash  string   // hex sha256 over (path, size, content) of every file
}

// plan is the deterministic shard layout for one corpus + config.
type plan struct {
	shards []shardPlan
	hash   string // hex sha256 over the config fingerprint and shard hashes
}

// langExt mirrors core.LoadDirectory's extension selection.
func langExt(lang ast.Language) string {
	switch lang {
	case ast.Java:
		return ".java"
	case ast.Go:
		return ".go"
	}
	return ".py"
}

// listCorpus returns the corpus-relative source paths in the order
// core.LoadDirectory visits them (lexical WalkDir order), so that
// concatenating the shards reproduces the single-process file order
// exactly.
func listCorpus(root string, lang ast.Language) ([]string, error) {
	ext := langExt(lang)
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ext) {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		files = append(files, rel)
		return nil
	})
	return files, err
}

// repoOf returns the repository a corpus-relative path belongs to: its
// first path component (the layout corpus.WriteTo produces), matching
// core.LoadDirectory.
func repoOf(rel string) string {
	if i := strings.IndexByte(rel, filepath.Separator); i >= 0 {
		return rel[:i]
	}
	return rel
}

// buildPlan lists the corpus, groups files by repository (repos never
// straddle shards, and lexical walk order keeps each repo's files
// contiguous), partitions the repo sequence into `shards` balanced
// contiguous buckets, and hashes every shard's file contents. The result
// is a pure function of the corpus tree, the language, and the config
// fingerprint — two drivers over the same inputs compute the same plan,
// which is what lets a resumed driver trust checkpoints it did not
// write.
func buildPlan(root string, lang ast.Language, shards int, fingerprint string) (plan, error) {
	files, err := listCorpus(root, lang)
	if err != nil {
		return plan{}, fmt.Errorf("driver: list corpus: %w", err)
	}
	if len(files) == 0 {
		return plan{}, fmt.Errorf("driver: no %s files under %s", langExt(lang), root)
	}

	// Group consecutive files by repo. WalkDir is lexical, so all of one
	// top-level directory's files are consecutive.
	type group struct{ lo, hi int }
	var groups []group
	for i := 0; i < len(files); {
		j := i + 1
		for j < len(files) && repoOf(files[j]) == repoOf(files[i]) {
			j++
		}
		groups = append(groups, group{i, j})
		i = j
	}

	var p plan
	for _, s := range parallel.Shards(len(groups), shards) {
		p.shards = append(p.shards, shardPlan{
			files: files[groups[s.Lo].lo:groups[s.Hi-1].hi],
		})
	}
	for i := range p.shards {
		h, err := hashSlice(root, p.shards[i].files)
		if err != nil {
			return plan{}, err
		}
		p.shards[i].hash = h
	}
	ph := sha256.New()
	ph.Write([]byte(fingerprint))
	for _, s := range p.shards {
		ph.Write([]byte{0})
		ph.Write([]byte(s.hash))
	}
	p.hash = hex.EncodeToString(ph.Sum(nil))
	return p, nil
}

// hashSlice hashes one shard's corpus slice: every file's relative path,
// length, and content, in shard order. A checkpoint embedding this hash
// is valid only for the exact bytes it was mined from.
func hashSlice(root string, rels []string) (string, error) {
	h := sha256.New()
	var scratch [binary.MaxVarintLen64]byte
	for _, rel := range rels {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return "", fmt.Errorf("driver: hash corpus slice: %w", err)
		}
		h.Write([]byte(rel))
		h.Write([]byte{0})
		h.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(data)))])
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
