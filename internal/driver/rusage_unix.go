//go:build unix

package driver

import (
	"os"
	"runtime"
	"syscall"
	"time"
)

// processCPUTime returns this process's accumulated user+system CPU time
// from getrusage(RUSAGE_SELF). Job resource accounting takes the delta
// across a job.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// processMaxRSSKB returns this process's peak resident set size in KiB.
func processMaxRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return rssKB(int64(ru.Maxrss))
}

// waitUsage extracts a reaped child's CPU time and peak RSS from the
// rusage the kernel attached to its exit status.
func waitUsage(ps *os.ProcessState) (cpu time.Duration, maxRSSKB int64) {
	if ps == nil {
		return 0, 0
	}
	ru, ok := ps.SysUsage().(*syscall.Rusage)
	if !ok || ru == nil {
		return 0, 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano()), rssKB(int64(ru.Maxrss))
}

// rssKB normalizes getrusage's Maxrss to KiB: Linux reports KiB, Darwin
// reports bytes.
func rssKB(maxrss int64) int64 {
	if runtime.GOOS == "darwin" {
		return maxrss / 1024
	}
	return maxrss
}
