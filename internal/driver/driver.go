package driver

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"namer/internal/confusion"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/knowledge"
	"namer/internal/mining"
	"namer/internal/namepath"
	"namer/internal/obs"
	"namer/internal/obs/log"
	"namer/internal/pattern"
)

// Options configures a map/reduce mining run.
type Options struct {
	// CorpusDir is the corpus root (repositories as subdirectories, plus
	// the commits/ history the confusing-pair miner reads).
	CorpusDir string
	// Config is the full mining configuration, as a single-process run
	// would use (core.DefaultConfig plus flag overrides). A
	// Mining.MinPatternCount of zero auto-scales with the parsed file
	// count after the map phase, mirroring cmd/namer-mine.
	Config core.Config
	// Shards is the number of corpus shards; 0 means NumCPU. Shards in
	// excess of the corpus's repository count are dropped (repos never
	// straddle shards).
	Shards int
	// CheckpointDir holds the per-shard artifacts. It is created if
	// missing; valid artifacts found in it are reused instead of re-run.
	CheckpointDir string
	// Fresh discards any existing checkpoints instead of resuming.
	Fresh bool
	// WorkerCommand, when non-empty, is the argv of a worker subprocess
	// (typically the namer-mine binary with -worker); jobs are then
	// dispatched to spawned children over stdin/stdout JSON lines. Empty
	// runs map jobs as in-process goroutines.
	WorkerCommand []string
	// Workers is the number of concurrent map workers (goroutines or
	// child processes); 0 means min(Shards, NumCPU).
	Workers int
	// Status, when non-nil, receives progress lines (obs.Progress).
	// cmd/namer-mine passes stderr.
	Status io.Writer
	// Log receives the driver's structured events: resume decisions,
	// stale-checkpoint warnings, and captured worker stderr (tagged with
	// the worker's PID). Nil logs nothing. With a logger set, spawned
	// workers' stderr is piped through it line by line instead of
	// interleaving raw on the driver's stderr.
	Log *log.Logger
	// Monitor, when non-nil, observes every shard state transition; the
	// live status server (StartStatus) serves it. All driver hooks are
	// nil-safe, so leaving it nil costs one pointer check per event.
	Monitor *Monitor
	// Recorder, when non-nil, keeps the slowest per-job span trees for
	// the status server's /debug/traces. Setting it (or tracing the Run
	// context) turns on per-job tracing.
	Recorder *obs.FlightRecorder

	// afterJob, when non-nil, runs after each completed map job with its
	// phase and shard; a non-nil return aborts the run. Tests use it to
	// simulate a driver killed mid-run (and the obs gate uses it to
	// scrape the status server at a deterministic moment).
	afterJob func(phase string, shard int) error
}

// ShardUsage is one shard's measured resource footprint, summed over the
// map jobs that actually ran for it (a fully-reused shard has Jobs 0).
type ShardUsage struct {
	Shard int
	Jobs  int // jobs run (not reused) for this shard, 0..2
	Wall  time.Duration
	// CPU is user+system time from getrusage deltas around each job —
	// exact for spawned workers, process-wide (approximate) when
	// in-process jobs overlap.
	CPU        time.Duration
	MaxRSSKB   int64
	AllocBytes int64
}

// WorkerUsage is one spawned worker process's whole-life resource usage,
// from the rusage the kernel reports when the child is reaped.
type WorkerUsage struct {
	PID      int
	CPU      time.Duration
	MaxRSSKB int64
}

// Stats describes what a Run did — how much work ran versus resumed
// from checkpoints, and the shape of the reduce.
type Stats struct {
	Shards       int
	StmtsReused  int // round-1 checkpoints accepted as-is
	TreesReused  int // round-2 checkpoints accepted as-is
	FilesParsed  int
	FilesSkipped int
	Statements   int
	// Mining is the merged FP-tree shape per pattern type, in mined
	// order (consistency, then confusing-word).
	Mining []core.MiningStat
	// MapWall and ReduceWall split the wall clock between the map rounds
	// (including checkpoint validation) and the reduce/fp-growth/prune.
	MapWall    time.Duration
	ReduceWall time.Duration
	// Usage is the per-shard resource accounting, indexed by shard.
	Usage []ShardUsage
	// Workers is the per-child accounting for spawned worker processes
	// (empty for in-process runs), in reap order.
	Workers []WorkerUsage
}

// Run executes the full map/reduce mine and returns the knowledge
// artifact — byte-identical to a single-process mine of the same corpus
// and config at any shard count, worker count, or resume boundary.
func Run(ctx context.Context, opts Options) (*knowledge.Artifact, Stats, error) {
	var stats Stats
	cfg := opts.Config
	if cfg.Mining.MaxPathsPerStatement <= 0 {
		cfg.Mining.MaxPathsPerStatement = 10
	}
	if cfg.Mining.MinSatisfactionRatio <= 0 {
		cfg.Mining.MinSatisfactionRatio = 0.8
	}
	nshards := opts.Shards
	if nshards <= 0 {
		nshards = runtime.NumCPU()
	}

	ctx, dsp := obs.StartSpan(ctx, "driver")
	defer dsp.End()

	_, sp := obs.StartSpan(ctx, "plan")
	fingerprint := fmt.Sprintf("lang=%s analysis=%t minPath=%d maxPaths=%d",
		cfg.Lang, cfg.UseAnalysis, cfg.Mining.MinPathCount, cfg.Mining.MaxPathsPerStatement)
	p, err := buildPlan(opts.CorpusDir, cfg.Lang, nshards, fingerprint)
	sp.End()
	if err != nil {
		return nil, stats, err
	}
	stats.Shards = len(p.shards)
	if opts.CheckpointDir == "" {
		return nil, stats, errors.New("driver: CheckpointDir is required")
	}
	if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
		return nil, stats, err
	}
	if opts.Fresh {
		if err := clearCheckpoints(opts.CheckpointDir); err != nil {
			return nil, stats, err
		}
	}

	r := &runner{opts: opts, cfg: cfg, plan: p, stats: &stats}
	r.usage = make([]ShardUsage, len(p.shards))
	for i := range r.usage {
		r.usage[i].Shard = i
	}
	opts.Monitor.begin(p)
	mapStart := time.Now()

	// Map round 1: statement extraction, checkpointed per shard.
	opts.Monitor.setRound("map_stmts")
	shardArts, err := r.mapStmts(ctx)
	if err != nil {
		return nil, r.finish(stats), err
	}

	// Reduce 1: merge the per-shard counts and mine the confusing pairs;
	// the result is itself a checkpoint so round 2 can be re-entered
	// without repeating it.
	opts.Monitor.setRound("reduce_counts")
	countsPayload, counts, err := r.reduceCounts(ctx, shardArts)
	if err != nil {
		return nil, r.finish(stats), err
	}
	stats.FilesParsed = counts.FilesParsed
	stats.FilesSkipped = counts.FilesSkipped
	stats.Statements = counts.Statements
	if cfg.Mining.MinPatternCount <= 0 {
		cfg.Mining.MinPatternCount = counts.FilesParsed / 3
		if cfg.Mining.MinPatternCount < 5 {
			cfg.Mining.MinPatternCount = 5
		}
		r.cfg = cfg
	}

	// Map round 2: per-shard FP subtrees against the global counts.
	opts.Monitor.setRound("map_trees")
	treeArts, err := r.mapTrees(ctx, hashBytes(countsPayload))
	if err != nil {
		return nil, r.finish(stats), err
	}
	stats.MapWall = time.Since(mapStart)

	// Reduce 2: merge, grow, prune, assemble.
	opts.Monitor.setRound("reduce_knowledge")
	reduceStart := time.Now()
	art, err := r.reduceKnowledge(ctx, shardArts, treeArts, counts)
	stats.ReduceWall = time.Since(reduceStart)
	opts.Monitor.setRound("done")
	if err != nil {
		return nil, r.finish(stats), err
	}
	return art, r.finish(stats), nil
}

// finish folds the runner's accumulated accounting into the stats.
func (r *runner) finish(stats Stats) Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	stats.Usage = r.usage
	stats.Workers = r.procs
	return stats
}

// clearCheckpoints removes this driver's checkpoint files (and nothing
// else) from dir.
func clearCheckpoints(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*.ck"))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return err
		}
	}
	return nil
}

type runner struct {
	opts  Options
	cfg   core.Config
	plan  plan
	stats *Stats

	mu    sync.Mutex
	usage []ShardUsage
	procs []WorkerUsage
}

// recordUsage accumulates one completed job's measurements into its
// shard's row.
func (r *runner) recordUsage(shard int, res Result, wall time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u := &r.usage[shard]
	u.Jobs++
	u.Wall += wall
	u.CPU += time.Duration(res.CPUNs)
	u.AllocBytes += res.AllocBytes
	if res.MaxRSSKB > u.MaxRSSKB {
		u.MaxRSSKB = res.MaxRSSKB
	}
}

// recordWorker notes a reaped worker child's whole-process usage.
func (r *runner) recordWorker(wu WorkerUsage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.procs = append(r.procs, wu)
}

func (r *runner) stmtsPath(shard int) string {
	return filepath.Join(r.opts.CheckpointDir, fmt.Sprintf("shard-%04d.stmts.ck", shard))
}

func (r *runner) treesPath(shard int) string {
	return filepath.Join(r.opts.CheckpointDir, fmt.Sprintf("shard-%04d.trees.ck", shard))
}

func (r *runner) countsPath() string {
	return filepath.Join(r.opts.CheckpointDir, "counts.ck")
}

func (r *runner) workers(jobs int) int {
	w := r.opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mapStmts runs map round 1, reusing any shard checkpoint whose
// embedded corpus-slice hash matches the plan, and returns every shard's
// decoded artifact in shard order.
func (r *runner) mapStmts(ctx context.Context) ([]*shardStmts, error) {
	ctx, sp := obs.StartSpan(ctx, "map_extract")
	defer sp.End()
	arts := make([]*shardStmts, len(r.plan.shards))
	var jobs []Job
	for i, shard := range r.plan.shards {
		if a, err := r.loadStmts(ctx, i); err == nil {
			arts[i] = a
			r.stats.StmtsReused++
			r.opts.Monitor.shardReused(i, "stmts")
			continue
		} else if !errors.Is(err, os.ErrNotExist) {
			r.opts.Log.Warn("invalid stmts checkpoint; re-running shard",
				log.Int("shard", i), log.Err(err))
		}
		jobs = append(jobs, Job{
			Phase:                "stmts",
			Shard:                i,
			OutPath:              r.stmtsPath(i),
			CorpusDir:            r.opts.CorpusDir,
			Lang:                 r.cfg.Lang.String(),
			Files:                shard.files,
			UseAnalysis:          r.cfg.UseAnalysis,
			MaxPathsPerStatement: r.cfg.Mining.MaxPathsPerStatement,
			SliceHash:            shard.hash,
		})
	}
	sp.SetAttrInt("shards", len(r.plan.shards))
	sp.SetAttrInt("reused", r.stats.StmtsReused)
	if len(jobs) > 0 {
		total := 0
		for _, j := range jobs {
			total += len(j.Files)
		}
		if err := r.runJobs(ctx, jobs, "map", "files", total); err != nil {
			return nil, err
		}
		for _, j := range jobs {
			a, err := r.loadStmts(ctx, j.Shard)
			if err != nil {
				return nil, fmt.Errorf("driver: shard %d checkpoint unreadable after map: %w", j.Shard, err)
			}
			arts[j.Shard] = a
		}
	}
	return arts, nil
}

// loadStmts reads and validates one shard's round-1 checkpoint, recorded
// as a resume_validate span when the run is traced.
func (r *runner) loadStmts(ctx context.Context, shard int) (*shardStmts, error) {
	ctx, sp := obs.StartSpan(ctx, "resume_validate")
	sp.SetAttr("phase", "stmts")
	sp.SetAttrInt("shard", shard)
	defer sp.End()
	payload, err := knowledge.ReadCheckpointCtx(ctx, r.stmtsPath(shard), kindStmts)
	if err != nil {
		sp.SetAttr("result", "unreadable")
		return nil, err
	}
	a, err := decodeShardStmts(payload)
	if err != nil {
		sp.SetAttr("result", "corrupt")
		return nil, err
	}
	if a.SliceHash != r.plan.shards[shard].hash {
		sp.SetAttr("result", "stale")
		return nil, fmt.Errorf("stale checkpoint: corpus slice changed")
	}
	sp.SetAttr("result", "reused")
	return a, nil
}

// reduceCounts merges the shards' pass-1 counts, mines the confusing
// word pairs from the commit history, and checkpoints the result. A
// valid existing counts checkpoint for the same plan is reused verbatim
// so resumed runs reach round 2 without re-merging.
func (r *runner) reduceCounts(ctx context.Context, arts []*shardStmts) ([]byte, *reduceCounts, error) {
	ctx, sp := obs.StartSpan(ctx, "reduce_counts")
	defer sp.End()
	if payload, err := knowledge.ReadCheckpointCtx(ctx, r.countsPath(), kindCounts); err == nil {
		if a, err := decodeReduceCounts(payload); err == nil && a.PlanHash == r.plan.hash {
			sp.SetAttrInt("reused", 1)
			r.opts.Log.Info("reusing counts checkpoint", log.Str("file", "counts.ck"))
			return payload, a, nil
		}
	}

	merged := &reduceCounts{PlanHash: r.plan.hash}
	byKey := make(map[string]int32)
	for _, a := range arts {
		merged.FilesParsed += a.FilesParsed
		merged.FilesSkipped += a.FilesSkipped
		merged.Statements += len(a.Stmts)
		for i, p := range a.Paths {
			id, ok := byKey[p.Key()]
			if !ok {
				id = int32(len(merged.Paths))
				byKey[p.Key()] = id
				merged.Paths = append(merged.Paths, p)
				merged.Counts = append(merged.Counts, 0)
			}
			merged.Counts[id] += a.Counts[i]
		}
	}
	// Canonicalize the table order so the counts payload — and therefore
	// the counts hash that round-2 checkpoints embed — is independent of
	// shard layout.
	order := make([]int, len(merged.Paths))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return merged.Paths[order[i]].Key() < merged.Paths[order[j]].Key()
	})
	sortedPaths := make([]namepath.Path, len(order))
	sortedCounts := make([]int, len(order))
	for i, o := range order {
		sortedPaths[i] = merged.Paths[o]
		sortedCounts[i] = merged.Counts[o]
	}
	merged.Paths, merged.Counts = sortedPaths, sortedCounts

	merged.Pairs = r.minePairs()
	sp.SetAttrInt("distinct_paths", len(merged.Paths))
	payload := encodeReduceCounts(merged)
	if err := knowledge.WriteCheckpointCtx(ctx, r.countsPath(), kindCounts, payload); err != nil {
		return nil, nil, err
	}
	return payload, merged, nil
}

// minePairs mirrors cmd/namer-mine's pair mining: read the corpus commit
// history if present, parse the pairs, mine and prune.
func (r *runner) minePairs() *confusion.PairSet {
	var commits []confusion.Commit
	if pairs, err := corpus.ReadCommits(filepath.Join(r.opts.CorpusDir, "commits")); err == nil {
		var skipped int
		commits, skipped = corpus.ParseCommitSources(r.cfg.Lang, pairs)
		if skipped > 0 {
			r.opts.Log.Warn("some commit pairs did not parse",
				log.Int("skipped", skipped), log.Int("total", len(pairs)))
		}
	} else {
		r.opts.Log.Warn("no commit history found; confusing-word patterns disabled")
	}
	ps := confusion.MinePairs(commits)
	if r.cfg.MinPairCount > 1 {
		ps = ps.Prune(r.cfg.MinPairCount)
	}
	return ps
}

// mapTrees runs map round 2, reusing shard-tree checkpoints that match
// both the corpus slice and the current global counts.
func (r *runner) mapTrees(ctx context.Context, countsHash string) ([]*shardTrees, error) {
	ctx, sp := obs.StartSpan(ctx, "map_trees")
	defer sp.End()
	arts := make([]*shardTrees, len(r.plan.shards))
	var jobs []Job
	for i := range r.plan.shards {
		if a, err := r.loadTrees(ctx, i, countsHash); err == nil {
			arts[i] = a
			r.stats.TreesReused++
			r.opts.Monitor.shardReused(i, "trees")
			continue
		}
		jobs = append(jobs, Job{
			Phase:                "trees",
			Shard:                i,
			OutPath:              r.treesPath(i),
			StmtsPath:            r.stmtsPath(i),
			CountsPath:           r.countsPath(),
			CountsHash:           countsHash,
			MinPathCount:         r.cfg.Mining.MinPathCount,
			MaxPathsPerStatement: r.cfg.Mining.MaxPathsPerStatement,
		})
	}
	sp.SetAttrInt("reused", r.stats.TreesReused)
	if len(jobs) > 0 {
		if err := r.runJobs(ctx, jobs, "grow", "shards", len(jobs)*len(minedTypes)); err != nil {
			return nil, err
		}
		for _, j := range jobs {
			a, err := r.loadTrees(ctx, j.Shard, countsHash)
			if err != nil {
				return nil, fmt.Errorf("driver: shard %d trees unreadable after map: %w", j.Shard, err)
			}
			arts[j.Shard] = a
		}
	}
	return arts, nil
}

// loadTrees reads and validates one shard's round-2 checkpoint, recorded
// as a resume_validate span when the run is traced.
func (r *runner) loadTrees(ctx context.Context, shard int, countsHash string) (*shardTrees, error) {
	ctx, sp := obs.StartSpan(ctx, "resume_validate")
	sp.SetAttr("phase", "trees")
	sp.SetAttrInt("shard", shard)
	defer sp.End()
	payload, err := knowledge.ReadCheckpointCtx(ctx, r.treesPath(shard), kindTrees)
	if err != nil {
		sp.SetAttr("result", "unreadable")
		return nil, err
	}
	a, err := decodeShardTrees(payload)
	if err != nil {
		sp.SetAttr("result", "corrupt")
		return nil, err
	}
	if a.SliceHash != r.plan.shards[shard].hash {
		sp.SetAttr("result", "stale")
		return nil, fmt.Errorf("stale checkpoint: corpus slice changed")
	}
	if a.CountsHash != countsHash {
		sp.SetAttr("result", "stale")
		return nil, fmt.Errorf("stale checkpoint: global counts changed")
	}
	sp.SetAttr("result", "reused")
	return a, nil
}

// reduceKnowledge is the final reduce: remap-merge the shard subtrees
// per pattern type, run FP-growth and the satisfaction-ratio prune once
// over the whole dataset, and assemble the artifact.
func (r *runner) reduceKnowledge(ctx context.Context, stmtArts []*shardStmts,
	treeArts []*shardTrees, counts *reduceCounts) (*knowledge.Artifact, error) {

	var stmts []*pattern.Statement
	for _, a := range stmtArts {
		stmts = append(stmts, a.statements()...)
	}

	var patterns []*pattern.Pattern
	for ti, typ := range minedTypes {
		_, sp := obs.StartSpan(ctx, "reduce_merge")
		sp.SetAttr("type", typ.String())
		shardTreesOfType := make([]mining.ShardTree, 0, len(treeArts))
		for s, a := range treeArts {
			if ti >= len(a.Types) || a.Types[ti].Type != typ {
				sp.End()
				return nil, fmt.Errorf("driver: shard %d trees missing type %v", s, typ)
			}
			tree, items, err := a.Types[ti].decodeTyped()
			if err != nil {
				sp.End()
				return nil, fmt.Errorf("driver: shard %d %v tree: %w", s, typ, err)
			}
			shardTreesOfType = append(shardTreesOfType, mining.ShardTree{
				Tree: tree, Items: items, Transactions: a.Types[ti].Transactions,
			})
		}
		merged := mining.MergeShardTrees(shardTreesOfType)
		r.stats.Mining = append(r.stats.Mining, core.MiningStat{
			Type: typ, TreeNodes: merged.Tree.Size(), Transactions: merged.Transactions,
		})
		sp.SetAttrInt("tree_nodes", merged.Tree.Size())
		sp.SetAttrInt("transactions", merged.Transactions)
		sp.End()

		pairs := counts.Pairs
		if typ == pattern.Consistency {
			pairs = nil
		}
		_, sp = obs.StartSpan(ctx, "fp_growth")
		candidates := mining.Grow(merged, typ, pairs, r.cfg.Mining)
		sp.SetAttrInt("candidates", len(candidates))
		sp.End()

		_, sp = obs.StartSpan(ctx, "prune_uncommon")
		kept := mining.PruneUncommon(candidates, stmts,
			r.cfg.Mining.MinSatisfactionRatio, r.workers(len(candidates)))
		sp.SetAttrInt("kept", len(kept))
		sp.End()
		patterns = append(patterns, kept...)
	}

	return &knowledge.Artifact{
		Lang:     r.cfg.Lang.String(),
		Pairs:    counts.Pairs,
		Patterns: patterns,
	}, nil
}

// runJobs executes map jobs on a pool of workers — in-process when
// Options.WorkerCommand is empty, spawned child processes otherwise —
// with cross-worker progress folded into one line via
// obs.ProgressAggregator. Each job writes its own checkpoint, so job
// scheduling leaves no trace in the outputs.
//
// When the run is traced (or a Recorder is set), each job runs under its
// own local trace: spawned workers ship their span batches back on the
// done Result and the batches are grafted into the driver's trace as
// per-PID lanes; in-process jobs' spans are grafted under the driver's
// own PID. The per-job traces additionally feed the flight recorder, so
// /debug/traces shows the slowest shards of a live mine.
func (r *runner) runJobs(ctx context.Context, jobs []Job, label, unit string, total int) error {
	workers := r.workers(len(jobs))
	var agg *obs.ProgressAggregator
	if r.opts.Status != nil {
		prog := obs.NewProgress(r.opts.Status, label, unit)
		agg = obs.NewProgressAggregator(prog, len(r.plan.shards), total)
	}
	tr := obs.TraceFromContext(ctx)
	mon := r.opts.Monitor
	rec := r.opts.Recorder
	tracing := tr != nil || rec != nil
	subproc := len(r.opts.WorkerCommand) > 0
	selfPID := os.Getpid()

	jobCh := make(chan Job)
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		// The worker body runs in a closure so its deferred executor
		// close — which reaps the child and records its rusage — happens
		// strictly before the completion signal: runJobs must not return
		// (and Stats must not be snapshotted) with a worker unreaped.
		go func() {
			errCh <- func() error {
				var ex executor = inprocExecutor{}
				pid := selfPID
				if subproc {
					pe, err := newProcExecutor(ctx, r.opts.WorkerCommand, r.opts.Log, r.recordWorker)
					if err != nil {
						return err
					}
					defer pe.close()
					ex = pe
					pid = pe.pid
				}
				for job := range jobCh {
					jctx := ctx
					var jobTr *obs.Trace
					if tracing {
						jctx, jobTr = obs.NewTrace(ctx, fmt.Sprintf("shard-%04d %s", job.Shard, job.Phase), "")
						jobTr.SetMaxSpans(1 << 16)
						job.Trace = subproc
					}
					mon.shardRunning(job.Shard, job.Phase, pid)
					report := func(done, extra int) {
						if agg != nil {
							agg.Report(job.Shard, done, extra)
						}
					}
					start := time.Now()
					res, err := ex.run(jctx, job, report)
					wall := time.Since(start)
					if err == nil && !res.OK {
						err = fmt.Errorf("driver: shard %d %s: %s", job.Shard, job.Phase, res.Error)
					}
					if jobTr != nil {
						r.graftJobTrace(tr, jobTr, job, res)
						if rec != nil {
							rec.Add(jobTr)
						}
					}
					if err == nil {
						mon.shardDone(job.Shard, job.Phase, res, wall)
						r.recordUsage(job.Shard, res, wall)
						r.opts.Log.Debug("shard job done",
							log.Str("phase", job.Phase), log.Int("shard", job.Shard),
							log.Int("worker_pid", res.PID), log.Dur("wall", wall),
							log.Dur("cpu", time.Duration(res.CPUNs)), log.Int64("max_rss_kb", res.MaxRSSKB))
						// The shard is done; pin its progress at its total.
						if agg != nil && job.Phase == "stmts" {
							agg.Report(job.Shard, len(job.Files), res.Statements)
						}
						if r.opts.afterJob != nil {
							err = r.opts.afterJob(job.Phase, job.Shard)
						}
					} else {
						mon.shardFailed(job.Shard, job.Phase, err.Error())
					}
					if err != nil {
						return err
					}
				}
				return nil
			}()
		}()
	}
	var firstErr error
	sent := 0
dispatch:
	for _, job := range jobs {
		select {
		case jobCh <- job:
			sent++
		case firstErr = <-errCh:
			workers-- // that worker is gone
			if firstErr == nil {
				firstErr = errors.New("driver: worker exited early")
			}
			break dispatch
		case <-ctx.Done():
			firstErr = ctx.Err()
			break dispatch
		}
	}
	close(jobCh)
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil && agg != nil {
		agg.Final()
	}
	return firstErr
}

// graftJobTrace finishes one job's local trace and stitches it into the
// driver's trace tr (when tracing): a spawned worker's shipped span
// batch becomes a lane under the worker's real PID, and an in-process
// job's local spans become a lane under the driver's own PID. Malformed
// batches are dropped with a warning, never trusted.
func (r *runner) graftJobTrace(tr, jobTr *obs.Trace, job Job, res Result) {
	if len(res.Spans) > 0 {
		lane := fmt.Sprintf("worker pid=%d", res.PID)
		if err := jobTr.AddExternalSpans(res.PID, lane, res.Spans); err != nil {
			r.opts.Log.Warn("dropping malformed worker span batch",
				log.Int("shard", job.Shard), log.Int("worker_pid", res.PID), log.Err(err))
		} else if tr != nil {
			tr.AddExternalSpans(res.PID, lane, res.Spans)
		}
	}
	jobTr.Finish()
	if tr != nil {
		if local := jobTr.WireSpans(); len(local) > 0 {
			tr.AddExternalSpans(os.Getpid(), fmt.Sprintf("driver jobs pid=%d", os.Getpid()), local)
		}
	}
}

// executor runs one map job somewhere.
type executor interface {
	run(ctx context.Context, job Job, report func(done, extra int)) (Result, error)
}

// inprocExecutor runs jobs on the calling goroutine.
type inprocExecutor struct{}

func (inprocExecutor) run(ctx context.Context, job Job, report func(done, extra int)) (Result, error) {
	return RunJob(ctx, job, report), nil
}

// procExecutor owns one worker child process and feeds it jobs over
// stdin/stdout JSON lines.
type procExecutor struct {
	cmd        *exec.Cmd
	stdin      io.WriteCloser
	enc        *json.Encoder
	dec        *json.Decoder
	pid        int
	stderrDone chan struct{}     // closed when the stderr capture drains
	onExit     func(WorkerUsage) // receives the reaped child's rusage
}

// newProcExecutor spawns one worker child. With a logger, the child's
// stderr is captured line by line and re-emitted through it tagged with
// the worker's PID — no interleaved raw writes on the driver's stderr;
// without one, stderr passes through untouched (the old behavior).
func newProcExecutor(ctx context.Context, argv []string, lg *log.Logger, onExit func(WorkerUsage)) (*procExecutor, error) {
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	var stderr io.ReadCloser
	if lg != nil {
		p, err := cmd.StderrPipe()
		if err != nil {
			return nil, err
		}
		stderr = p
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("driver: start worker %q: %w", argv[0], err)
	}
	pe := &procExecutor{
		cmd: cmd, stdin: stdin,
		enc:    json.NewEncoder(stdin),
		dec:    json.NewDecoder(stdout),
		pid:    cmd.Process.Pid,
		onExit: onExit,
	}
	if stderr != nil {
		wl := lg.With(log.Int("worker_pid", pe.pid))
		pe.stderrDone = make(chan struct{})
		go func() {
			defer close(pe.stderrDone)
			sc := bufio.NewScanner(stderr)
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			for sc.Scan() {
				if line := sc.Text(); line != "" {
					wl.Info("worker: " + line)
				}
			}
			// A line over the buffer cap errors the scanner; drain the
			// rest so the child never blocks on a full stderr pipe.
			io.Copy(io.Discard, stderr)
		}()
	}
	return pe, nil
}

func (p *procExecutor) run(ctx context.Context, job Job, report func(done, extra int)) (Result, error) {
	if err := p.enc.Encode(job); err != nil {
		return Result{}, fmt.Errorf("driver: send job to worker: %w", err)
	}
	for {
		var res Result
		if err := p.dec.Decode(&res); err != nil {
			return Result{}, fmt.Errorf("driver: worker died mid-job (shard %d): %w", job.Shard, err)
		}
		if res.Event == "progress" {
			report(res.Done, res.Extra)
			continue
		}
		return res, nil
	}
}

func (p *procExecutor) close() {
	p.stdin.Close()
	if p.stderrDone != nil {
		<-p.stderrDone
	}
	p.cmd.Wait()
	if p.onExit != nil {
		cpu, rss := waitUsage(p.cmd.ProcessState)
		p.onExit(WorkerUsage{PID: p.pid, CPU: cpu, MaxRSSKB: rss})
	}
}
