package driver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"namer/internal/confusion"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/knowledge"
	"namer/internal/mining"
	"namer/internal/namepath"
	"namer/internal/obs"
	"namer/internal/pattern"
)

// Options configures a map/reduce mining run.
type Options struct {
	// CorpusDir is the corpus root (repositories as subdirectories, plus
	// the commits/ history the confusing-pair miner reads).
	CorpusDir string
	// Config is the full mining configuration, as a single-process run
	// would use (core.DefaultConfig plus flag overrides). A
	// Mining.MinPatternCount of zero auto-scales with the parsed file
	// count after the map phase, mirroring cmd/namer-mine.
	Config core.Config
	// Shards is the number of corpus shards; 0 means NumCPU. Shards in
	// excess of the corpus's repository count are dropped (repos never
	// straddle shards).
	Shards int
	// CheckpointDir holds the per-shard artifacts. It is created if
	// missing; valid artifacts found in it are reused instead of re-run.
	CheckpointDir string
	// Fresh discards any existing checkpoints instead of resuming.
	Fresh bool
	// WorkerCommand, when non-empty, is the argv of a worker subprocess
	// (typically the namer-mine binary with -worker); jobs are then
	// dispatched to spawned children over stdin/stdout JSON lines. Empty
	// runs map jobs as in-process goroutines.
	WorkerCommand []string
	// Workers is the number of concurrent map workers (goroutines or
	// child processes); 0 means min(Shards, NumCPU).
	Workers int
	// Status, when non-nil, receives progress lines (obs.Progress) and
	// resume notes. cmd/namer-mine passes stderr.
	Status io.Writer

	// afterJob, when non-nil, runs after each completed map job with its
	// phase and shard; a non-nil return aborts the run. Tests use it to
	// simulate a driver killed mid-run.
	afterJob func(phase string, shard int) error
}

// Stats describes what a Run did — how much work ran versus resumed
// from checkpoints, and the shape of the reduce.
type Stats struct {
	Shards       int
	StmtsReused  int // round-1 checkpoints accepted as-is
	TreesReused  int // round-2 checkpoints accepted as-is
	FilesParsed  int
	FilesSkipped int
	Statements   int
	// Mining is the merged FP-tree shape per pattern type, in mined
	// order (consistency, then confusing-word).
	Mining []core.MiningStat
	// MapWall and ReduceWall split the wall clock between the map rounds
	// (including checkpoint validation) and the reduce/fp-growth/prune.
	MapWall    time.Duration
	ReduceWall time.Duration
}

// Run executes the full map/reduce mine and returns the knowledge
// artifact — byte-identical to a single-process mine of the same corpus
// and config at any shard count, worker count, or resume boundary.
func Run(ctx context.Context, opts Options) (*knowledge.Artifact, Stats, error) {
	var stats Stats
	cfg := opts.Config
	if cfg.Mining.MaxPathsPerStatement <= 0 {
		cfg.Mining.MaxPathsPerStatement = 10
	}
	if cfg.Mining.MinSatisfactionRatio <= 0 {
		cfg.Mining.MinSatisfactionRatio = 0.8
	}
	nshards := opts.Shards
	if nshards <= 0 {
		nshards = runtime.NumCPU()
	}

	ctx, dsp := obs.StartSpan(ctx, "driver")
	defer dsp.End()

	_, sp := obs.StartSpan(ctx, "plan")
	fingerprint := fmt.Sprintf("lang=%s analysis=%t minPath=%d maxPaths=%d",
		cfg.Lang, cfg.UseAnalysis, cfg.Mining.MinPathCount, cfg.Mining.MaxPathsPerStatement)
	p, err := buildPlan(opts.CorpusDir, cfg.Lang, nshards, fingerprint)
	sp.End()
	if err != nil {
		return nil, stats, err
	}
	stats.Shards = len(p.shards)
	if opts.CheckpointDir == "" {
		return nil, stats, errors.New("driver: CheckpointDir is required")
	}
	if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
		return nil, stats, err
	}
	if opts.Fresh {
		if err := clearCheckpoints(opts.CheckpointDir); err != nil {
			return nil, stats, err
		}
	}

	r := &runner{opts: opts, cfg: cfg, plan: p, stats: &stats}
	mapStart := time.Now()

	// Map round 1: statement extraction, checkpointed per shard.
	shardArts, err := r.mapStmts(ctx)
	if err != nil {
		return nil, stats, err
	}

	// Reduce 1: merge the per-shard counts and mine the confusing pairs;
	// the result is itself a checkpoint so round 2 can be re-entered
	// without repeating it.
	countsPayload, counts, err := r.reduceCounts(ctx, shardArts)
	if err != nil {
		return nil, stats, err
	}
	stats.FilesParsed = counts.FilesParsed
	stats.FilesSkipped = counts.FilesSkipped
	stats.Statements = counts.Statements
	if cfg.Mining.MinPatternCount <= 0 {
		cfg.Mining.MinPatternCount = counts.FilesParsed / 3
		if cfg.Mining.MinPatternCount < 5 {
			cfg.Mining.MinPatternCount = 5
		}
		r.cfg = cfg
	}

	// Map round 2: per-shard FP subtrees against the global counts.
	treeArts, err := r.mapTrees(ctx, hashBytes(countsPayload))
	if err != nil {
		return nil, stats, err
	}
	stats.MapWall = time.Since(mapStart)

	// Reduce 2: merge, grow, prune, assemble.
	reduceStart := time.Now()
	art, err := r.reduceKnowledge(ctx, shardArts, treeArts, counts)
	stats.ReduceWall = time.Since(reduceStart)
	if err != nil {
		return nil, stats, err
	}
	return art, stats, nil
}

// clearCheckpoints removes this driver's checkpoint files (and nothing
// else) from dir.
func clearCheckpoints(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*.ck"))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return err
		}
	}
	return nil
}

type runner struct {
	opts  Options
	cfg   core.Config
	plan  plan
	stats *Stats
}

func (r *runner) logf(format string, args ...any) {
	if r.opts.Status != nil {
		fmt.Fprintf(r.opts.Status, format+"\n", args...)
	}
}

func (r *runner) stmtsPath(shard int) string {
	return filepath.Join(r.opts.CheckpointDir, fmt.Sprintf("shard-%04d.stmts.ck", shard))
}

func (r *runner) treesPath(shard int) string {
	return filepath.Join(r.opts.CheckpointDir, fmt.Sprintf("shard-%04d.trees.ck", shard))
}

func (r *runner) countsPath() string {
	return filepath.Join(r.opts.CheckpointDir, "counts.ck")
}

func (r *runner) workers(jobs int) int {
	w := r.opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mapStmts runs map round 1, reusing any shard checkpoint whose
// embedded corpus-slice hash matches the plan, and returns every shard's
// decoded artifact in shard order.
func (r *runner) mapStmts(ctx context.Context) ([]*shardStmts, error) {
	ctx, sp := obs.StartSpan(ctx, "map_extract")
	defer sp.End()
	arts := make([]*shardStmts, len(r.plan.shards))
	var jobs []Job
	for i, shard := range r.plan.shards {
		if a, err := r.loadStmts(i); err == nil {
			arts[i] = a
			r.stats.StmtsReused++
			continue
		} else if !errors.Is(err, os.ErrNotExist) {
			r.logf("driver: shard %d: %v; re-running", i, err)
		}
		jobs = append(jobs, Job{
			Phase:                "stmts",
			Shard:                i,
			OutPath:              r.stmtsPath(i),
			CorpusDir:            r.opts.CorpusDir,
			Lang:                 r.cfg.Lang.String(),
			Files:                shard.files,
			UseAnalysis:          r.cfg.UseAnalysis,
			MaxPathsPerStatement: r.cfg.Mining.MaxPathsPerStatement,
			SliceHash:            shard.hash,
		})
	}
	sp.SetAttrInt("shards", len(r.plan.shards))
	sp.SetAttrInt("reused", r.stats.StmtsReused)
	if len(jobs) > 0 {
		total := 0
		for _, j := range jobs {
			total += len(j.Files)
		}
		if err := r.runJobs(ctx, jobs, "map", "files", total); err != nil {
			return nil, err
		}
		for _, j := range jobs {
			a, err := r.loadStmts(j.Shard)
			if err != nil {
				return nil, fmt.Errorf("driver: shard %d checkpoint unreadable after map: %w", j.Shard, err)
			}
			arts[j.Shard] = a
		}
	}
	return arts, nil
}

// loadStmts reads and validates one shard's round-1 checkpoint.
func (r *runner) loadStmts(shard int) (*shardStmts, error) {
	payload, err := knowledge.ReadCheckpoint(r.stmtsPath(shard), kindStmts)
	if err != nil {
		return nil, err
	}
	a, err := decodeShardStmts(payload)
	if err != nil {
		return nil, err
	}
	if a.SliceHash != r.plan.shards[shard].hash {
		return nil, fmt.Errorf("stale checkpoint: corpus slice changed")
	}
	return a, nil
}

// reduceCounts merges the shards' pass-1 counts, mines the confusing
// word pairs from the commit history, and checkpoints the result. A
// valid existing counts checkpoint for the same plan is reused verbatim
// so resumed runs reach round 2 without re-merging.
func (r *runner) reduceCounts(ctx context.Context, arts []*shardStmts) ([]byte, *reduceCounts, error) {
	_, sp := obs.StartSpan(ctx, "reduce_counts")
	defer sp.End()
	if payload, err := knowledge.ReadCheckpoint(r.countsPath(), kindCounts); err == nil {
		if a, err := decodeReduceCounts(payload); err == nil && a.PlanHash == r.plan.hash {
			sp.SetAttrInt("reused", 1)
			return payload, a, nil
		}
	}

	merged := &reduceCounts{PlanHash: r.plan.hash}
	byKey := make(map[string]int32)
	for _, a := range arts {
		merged.FilesParsed += a.FilesParsed
		merged.FilesSkipped += a.FilesSkipped
		merged.Statements += len(a.Stmts)
		for i, p := range a.Paths {
			id, ok := byKey[p.Key()]
			if !ok {
				id = int32(len(merged.Paths))
				byKey[p.Key()] = id
				merged.Paths = append(merged.Paths, p)
				merged.Counts = append(merged.Counts, 0)
			}
			merged.Counts[id] += a.Counts[i]
		}
	}
	// Canonicalize the table order so the counts payload — and therefore
	// the counts hash that round-2 checkpoints embed — is independent of
	// shard layout.
	order := make([]int, len(merged.Paths))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return merged.Paths[order[i]].Key() < merged.Paths[order[j]].Key()
	})
	sortedPaths := make([]namepath.Path, len(order))
	sortedCounts := make([]int, len(order))
	for i, o := range order {
		sortedPaths[i] = merged.Paths[o]
		sortedCounts[i] = merged.Counts[o]
	}
	merged.Paths, merged.Counts = sortedPaths, sortedCounts

	merged.Pairs = r.minePairs()
	sp.SetAttrInt("distinct_paths", len(merged.Paths))
	payload := encodeReduceCounts(merged)
	if err := knowledge.WriteCheckpoint(r.countsPath(), kindCounts, payload); err != nil {
		return nil, nil, err
	}
	return payload, merged, nil
}

// minePairs mirrors cmd/namer-mine's pair mining: read the corpus commit
// history if present, parse the pairs, mine and prune.
func (r *runner) minePairs() *confusion.PairSet {
	var commits []confusion.Commit
	if pairs, err := corpus.ReadCommits(filepath.Join(r.opts.CorpusDir, "commits")); err == nil {
		var skipped int
		commits, skipped = corpus.ParseCommitSources(r.cfg.Lang, pairs)
		if skipped > 0 {
			r.logf("warning: %d of %d commit pairs did not parse and were skipped", skipped, len(pairs))
		}
	} else {
		r.logf("warning: no commit history found; confusing-word patterns disabled")
	}
	ps := confusion.MinePairs(commits)
	if r.cfg.MinPairCount > 1 {
		ps = ps.Prune(r.cfg.MinPairCount)
	}
	return ps
}

// mapTrees runs map round 2, reusing shard-tree checkpoints that match
// both the corpus slice and the current global counts.
func (r *runner) mapTrees(ctx context.Context, countsHash string) ([]*shardTrees, error) {
	ctx, sp := obs.StartSpan(ctx, "map_trees")
	defer sp.End()
	arts := make([]*shardTrees, len(r.plan.shards))
	var jobs []Job
	for i := range r.plan.shards {
		if a, err := r.loadTrees(i, countsHash); err == nil {
			arts[i] = a
			r.stats.TreesReused++
			continue
		}
		jobs = append(jobs, Job{
			Phase:                "trees",
			Shard:                i,
			OutPath:              r.treesPath(i),
			StmtsPath:            r.stmtsPath(i),
			CountsPath:           r.countsPath(),
			CountsHash:           countsHash,
			MinPathCount:         r.cfg.Mining.MinPathCount,
			MaxPathsPerStatement: r.cfg.Mining.MaxPathsPerStatement,
		})
	}
	sp.SetAttrInt("reused", r.stats.TreesReused)
	if len(jobs) > 0 {
		if err := r.runJobs(ctx, jobs, "grow", "shards", len(jobs)*len(minedTypes)); err != nil {
			return nil, err
		}
		for _, j := range jobs {
			a, err := r.loadTrees(j.Shard, countsHash)
			if err != nil {
				return nil, fmt.Errorf("driver: shard %d trees unreadable after map: %w", j.Shard, err)
			}
			arts[j.Shard] = a
		}
	}
	return arts, nil
}

// loadTrees reads and validates one shard's round-2 checkpoint.
func (r *runner) loadTrees(shard int, countsHash string) (*shardTrees, error) {
	payload, err := knowledge.ReadCheckpoint(r.treesPath(shard), kindTrees)
	if err != nil {
		return nil, err
	}
	a, err := decodeShardTrees(payload)
	if err != nil {
		return nil, err
	}
	if a.SliceHash != r.plan.shards[shard].hash {
		return nil, fmt.Errorf("stale checkpoint: corpus slice changed")
	}
	if a.CountsHash != countsHash {
		return nil, fmt.Errorf("stale checkpoint: global counts changed")
	}
	return a, nil
}

// reduceKnowledge is the final reduce: remap-merge the shard subtrees
// per pattern type, run FP-growth and the satisfaction-ratio prune once
// over the whole dataset, and assemble the artifact.
func (r *runner) reduceKnowledge(ctx context.Context, stmtArts []*shardStmts,
	treeArts []*shardTrees, counts *reduceCounts) (*knowledge.Artifact, error) {

	var stmts []*pattern.Statement
	for _, a := range stmtArts {
		stmts = append(stmts, a.statements()...)
	}

	var patterns []*pattern.Pattern
	for ti, typ := range minedTypes {
		_, sp := obs.StartSpan(ctx, "reduce_merge")
		sp.SetAttr("type", typ.String())
		shardTreesOfType := make([]mining.ShardTree, 0, len(treeArts))
		for s, a := range treeArts {
			if ti >= len(a.Types) || a.Types[ti].Type != typ {
				sp.End()
				return nil, fmt.Errorf("driver: shard %d trees missing type %v", s, typ)
			}
			tree, items, err := a.Types[ti].decodeTyped()
			if err != nil {
				sp.End()
				return nil, fmt.Errorf("driver: shard %d %v tree: %w", s, typ, err)
			}
			shardTreesOfType = append(shardTreesOfType, mining.ShardTree{
				Tree: tree, Items: items, Transactions: a.Types[ti].Transactions,
			})
		}
		merged := mining.MergeShardTrees(shardTreesOfType)
		r.stats.Mining = append(r.stats.Mining, core.MiningStat{
			Type: typ, TreeNodes: merged.Tree.Size(), Transactions: merged.Transactions,
		})
		sp.SetAttrInt("tree_nodes", merged.Tree.Size())
		sp.SetAttrInt("transactions", merged.Transactions)
		sp.End()

		pairs := counts.Pairs
		if typ == pattern.Consistency {
			pairs = nil
		}
		_, sp = obs.StartSpan(ctx, "fp_growth")
		candidates := mining.Grow(merged, typ, pairs, r.cfg.Mining)
		sp.SetAttrInt("candidates", len(candidates))
		sp.End()

		_, sp = obs.StartSpan(ctx, "prune_uncommon")
		kept := mining.PruneUncommon(candidates, stmts,
			r.cfg.Mining.MinSatisfactionRatio, r.workers(len(candidates)))
		sp.SetAttrInt("kept", len(kept))
		sp.End()
		patterns = append(patterns, kept...)
	}

	return &knowledge.Artifact{
		Lang:     r.cfg.Lang.String(),
		Pairs:    counts.Pairs,
		Patterns: patterns,
	}, nil
}

// runJobs executes map jobs on a pool of workers — in-process when
// Options.WorkerCommand is empty, spawned child processes otherwise —
// with cross-worker progress folded into one line via
// obs.ProgressAggregator. Each job writes its own checkpoint, so job
// scheduling leaves no trace in the outputs.
func (r *runner) runJobs(ctx context.Context, jobs []Job, label, unit string, total int) error {
	workers := r.workers(len(jobs))
	var agg *obs.ProgressAggregator
	if r.opts.Status != nil {
		prog := obs.NewProgress(r.opts.Status, label, unit)
		agg = obs.NewProgressAggregator(prog, len(r.plan.shards), total)
	}

	jobCh := make(chan Job)
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var ex executor = inprocExecutor{}
			if len(r.opts.WorkerCommand) > 0 {
				pe, err := newProcExecutor(ctx, r.opts.WorkerCommand)
				if err != nil {
					errCh <- err
					return
				}
				defer pe.close()
				ex = pe
			}
			for job := range jobCh {
				report := func(done, extra int) {
					if agg != nil {
						agg.Report(job.Shard, done, extra)
					}
				}
				res, err := ex.run(job, report)
				if err == nil && !res.OK {
					err = fmt.Errorf("driver: shard %d %s: %s", job.Shard, job.Phase, res.Error)
				}
				if err == nil {
					// The shard is done; pin its progress at its total.
					if agg != nil && job.Phase == "stmts" {
						agg.Report(job.Shard, len(job.Files), res.Statements)
					}
					if r.opts.afterJob != nil {
						err = r.opts.afterJob(job.Phase, job.Shard)
					}
				}
				if err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
	}
	var firstErr error
	sent := 0
dispatch:
	for _, job := range jobs {
		select {
		case jobCh <- job:
			sent++
		case firstErr = <-errCh:
			workers-- // that worker is gone
			if firstErr == nil {
				firstErr = errors.New("driver: worker exited early")
			}
			break dispatch
		case <-ctx.Done():
			firstErr = ctx.Err()
			break dispatch
		}
	}
	close(jobCh)
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil && agg != nil {
		agg.Final()
	}
	return firstErr
}

// executor runs one map job somewhere.
type executor interface {
	run(job Job, report func(done, extra int)) (Result, error)
}

// inprocExecutor runs jobs on the calling goroutine.
type inprocExecutor struct{}

func (inprocExecutor) run(job Job, report func(done, extra int)) (Result, error) {
	return RunJob(job, report), nil
}

// procExecutor owns one worker child process and feeds it jobs over
// stdin/stdout JSON lines.
type procExecutor struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	enc   *json.Encoder
	dec   *json.Decoder
}

func newProcExecutor(ctx context.Context, argv []string) (*procExecutor, error) {
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("driver: start worker %q: %w", argv[0], err)
	}
	return &procExecutor{
		cmd: cmd, stdin: stdin,
		enc: json.NewEncoder(stdin),
		dec: json.NewDecoder(stdout),
	}, nil
}

func (p *procExecutor) run(job Job, report func(done, extra int)) (Result, error) {
	if err := p.enc.Encode(job); err != nil {
		return Result{}, fmt.Errorf("driver: send job to worker: %w", err)
	}
	for {
		var res Result
		if err := p.dec.Decode(&res); err != nil {
			return Result{}, fmt.Errorf("driver: worker died mid-job (shard %d): %w", job.Shard, err)
		}
		if res.Event == "progress" {
			report(res.Done, res.Extra)
			continue
		}
		return res, nil
	}
}

func (p *procExecutor) close() {
	p.stdin.Close()
	p.cmd.Wait()
}
