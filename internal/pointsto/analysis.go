package pointsto

import (
	"fmt"
	"strings"

	"namer/internal/ast"
	"namer/internal/datalog"
)

// Options configures the analysis.
type Options struct {
	// K is the call-site sensitivity depth. The paper uses k=5.
	K int
	// MaxAvgContexts is the combinatorial-explosion guard: if the average
	// number of contexts per function exceeds it, the analysis falls back
	// to a context-insensitive run (the paper uses 8).
	MaxAvgContexts float64
}

// DefaultOptions returns the paper's configuration (k=5, fallback at 8
// contexts per method on average).
func DefaultOptions() Options {
	return Options{K: 5, MaxAvgContexts: 8}
}

// Stats reports what the analysis did.
type Stats struct {
	Functions int
	Contexts  int
	Facts     int
	FellBack  bool
}

// Result holds origin labels per identifier occurrence in the original
// file AST.
type Result struct {
	Info    *FileInfo
	Stats   Stats
	origins map[*ast.Node]string
}

// OriginOf returns the origin label decorating the given terminal node of
// the original file AST, if the analysis determined one precisely.
func (r *Result) OriginOf(n *ast.Node) (string, bool) {
	o, ok := r.origins[n]
	return o, ok
}

// OriginCount returns the number of decorated nodes.
func (r *Result) OriginCount() int { return len(r.origins) }

// AnalyzeFile runs the analysis with the paper's default options.
func AnalyzeFile(root *ast.Node, lang ast.Language) *Result {
	return Analyze(root, lang, DefaultOptions())
}

// Analyze runs the per-file points-to and value-origin analysis.
func Analyze(root *ast.Node, lang ast.Language, opts Options) *Result {
	if opts.K < 0 {
		opts.K = 0
	}
	if opts.MaxAvgContexts <= 0 {
		opts.MaxAvgContexts = 8
	}
	info := Collect(root, lang)
	a := newAnalyzer(root, info, opts.K)
	if !a.run(opts) {
		// Context explosion: fall back to a context-insensitive run.
		a = newAnalyzer(root, info, 0)
		a.run(Options{K: 0, MaxAvgContexts: opts.MaxAvgContexts * 1e9})
		a.fellBack = true
	}
	return a.result()
}

// task is one (function, context) pair awaiting fact generation.
type task struct {
	fnID  string
	ctx   string
	node  *ast.Node
	class *ClassInfo
}

type analyzer struct {
	root     *ast.Node
	info     *FileInfo
	k        int
	eng      *datalog.Engine
	tmp      int
	queue    []task
	done     map[string]bool // fnID + "@" + ctx
	numFuncs int
	fellBack bool

	// occ maps identifier terminals to the variable keys holding their
	// value; recv maps Attr identifier terminals to the variable keys of
	// their receivers. direct holds origins resolved without points-to
	// (self, imports, class-hierarchy lookups).
	occ    map[*ast.Node][]string
	recv   map[*ast.Node][]string
	direct map[*ast.Node]string

	moduleKeys map[string]string // import alias -> alloc'ed key
	siteID     int
}

const rules = `
	VarPointsTo(V, H) :- Alloc(V, H).
	VarPointsTo(V, H) :- Move(V, W), VarPointsTo(W, H).
	FieldPointsTo(H, F, H2) :- Store(V, F, W), VarPointsTo(V, H), VarPointsTo(W, H2).
	VarPointsTo(V, H2) :- Load(V, W, F), VarPointsTo(W, H1), FieldPointsTo(H1, F, H2).
	Tainted(V) :- Modified(V).
	Tainted(V) :- Move(V, W), Tainted(W).
`

func newAnalyzer(root *ast.Node, info *FileInfo, k int) *analyzer {
	a := &analyzer{
		root:       root,
		info:       info,
		k:          k,
		eng:        datalog.NewEngine(),
		done:       make(map[string]bool),
		occ:        make(map[*ast.Node][]string),
		recv:       make(map[*ast.Node][]string),
		direct:     make(map[*ast.Node]string),
		moduleKeys: make(map[string]string),
	}
	a.eng.MustParse(rules)
	// Seed relations referenced before any fact exists.
	a.eng.Assert("Alloc", "$none", "$none")
	a.eng.Assert("Modified", "$none")
	return a
}

// run generates facts for every entry point, expanding call contexts, and
// evaluates the Datalog program. It returns false if the context explosion
// guard fired.
func (a *analyzer) run(opts Options) bool {
	// Entry points: every function and method, plus the module body.
	a.queue = a.queue[:0]
	a.enqueueEntryPoints()
	a.numFuncs = len(a.queue)
	if a.numFuncs == 0 {
		a.numFuncs = 1
	}
	for len(a.queue) > 0 {
		t := a.queue[0]
		a.queue = a.queue[1:]
		key := t.fnID + "@" + t.ctx
		if a.done[key] {
			continue
		}
		a.done[key] = true
		if float64(len(a.done)) > opts.MaxAvgContexts*float64(a.numFuncs) {
			return false
		}
		a.genFunction(t)
	}
	if err := a.eng.Run(); err != nil {
		// The rule set is fixed and stratifiable; an error here is a bug.
		panic("pointsto: " + err.Error())
	}
	return true
}

func (a *analyzer) enqueueEntryPoints() {
	// Module body as a pseudo-function (Python top-level statements).
	a.queue = append(a.queue, task{fnID: "<module>", ctx: "", node: a.root})
	for name, fn := range a.info.Funcs {
		a.queue = append(a.queue, task{fnID: name, ctx: "", node: fn})
	}
	for _, cls := range a.info.Classes {
		for mname, m := range cls.Methods {
			a.queue = append(a.queue, task{fnID: cls.Name + "." + mname, ctx: "", node: m, class: cls})
		}
	}
}

func (a *analyzer) result() *Result {
	res := &Result{Info: a.info, origins: make(map[*ast.Node]string)}
	res.Stats = Stats{
		Functions: a.numFuncs,
		Contexts:  len(a.done),
		Facts:     a.eng.Count("Alloc") + a.eng.Count("Move") + a.eng.Count("Store") + a.eng.Count("Load"),
		FellBack:  a.fellBack,
	}
	cache := make(map[string]string)
	originOfKeys := func(keys []string) string {
		label := ""
		for _, k := range keys {
			if len(a.eng.Query("Tainted", k)) > 0 {
				return ""
			}
			ck, ok := cache[k]
			if !ok {
				seen := map[string]bool{}
				for _, t := range a.eng.Query("VarPointsTo", k, "_") {
					seen[t[1]] = true
				}
				ck = ""
				if len(seen) == 1 {
					for h := range seen {
						ck = stripHeapLabel(h)
					}
				}
				cache[k] = ck
			}
			if ck == "" {
				return ""
			}
			if label == "" {
				label = ck
			} else if label != ck {
				return ""
			}
		}
		return label
	}
	for n, keys := range a.occ {
		if o := originOfKeys(keys); o != "" {
			res.origins[n] = o
		}
	}
	for n, keys := range a.recv {
		if o := originOfKeys(keys); o != "" {
			res.origins[n] = o
		}
	}
	// Direct resolutions (self, imports, hierarchy lookups) win.
	for n, o := range a.direct {
		if o != "" {
			res.origins[n] = o
		}
	}
	return res
}

func stripHeapLabel(h string) string {
	for _, p := range []string{"I:", "H:", "C:"} {
		if strings.HasPrefix(h, p) {
			return lastComponent(h[len(p):])
		}
	}
	if h == "$none" {
		return ""
	}
	return lastComponent(h)
}

// scope is the per-(function, context) fact-generation state.
type scope struct {
	fnID  string
	ctx   string
	class *ClassInfo
	env   map[string]int    // variable -> current version
	types map[string]string // variable -> statically-known class
}

func (s *scope) clone() *scope {
	c := &scope{fnID: s.fnID, ctx: s.ctx, class: s.class,
		env: make(map[string]int, len(s.env)), types: make(map[string]string, len(s.types))}
	for k, v := range s.env {
		c.env[k] = v
	}
	for k, v := range s.types {
		c.types[k] = v
	}
	return c
}

func (a *analyzer) varKey(s *scope, name string, ver int) string {
	return s.ctx + "/" + s.fnID + "/" + name + "#" + fmt.Sprint(ver)
}

func (a *analyzer) retKey(fnID, ctx string) string {
	return ctx + "/" + fnID + "/$ret"
}

func (a *analyzer) tmpKey(s *scope) string {
	a.tmp++
	return s.ctx + "/" + s.fnID + "/$t" + fmt.Sprint(a.tmp)
}

// genFunction emits facts for one (function, context).
func (a *analyzer) genFunction(t task) {
	s := &scope{fnID: t.fnID, ctx: t.ctx, class: t.class,
		env: make(map[string]int), types: make(map[string]string)}
	if t.fnID == "<module>" {
		a.genStmts(t.node.Children, s)
		return
	}
	// Bind formals at version 0.
	params := findChild(t.node, ast.Params)
	if params != nil {
		for i, p := range params.Children {
			name, typ := paramNameType(p)
			if name == "" {
				continue
			}
			s.env[name] = 0
			key := a.varKey(s, name, 0)
			switch {
			case i == 0 && t.class != nil && isSelfName(name):
				a.eng.Assert("Alloc", key, "I:"+t.class.Name)
			case typ != "" && !isPrimitiveType(typ):
				// Java declared parameter type: fresh site of that type.
				a.eng.Assert("Alloc", key, "H:"+typ)
				if _, ok := a.info.Classes[typ]; ok {
					s.types[name] = typ
				}
			}
		}
	}
	// Java methods have an implicit this.
	if t.class != nil && a.info.Lang == ast.Java {
		s.env["this"] = 0
		a.eng.Assert("Alloc", a.varKey(s, "this", 0), "I:"+t.class.Name)
	}
	if body := findChild(t.node, ast.Body); body != nil {
		a.genStmts(body.Children, s)
	}
}

func paramNameType(p *ast.Node) (name, typ string) {
	switch p.Kind {
	case ast.Param, ast.DefaultParam, ast.VarArgParam, ast.KwArgParam:
		for _, c := range p.Children {
			switch c.Kind {
			case ast.Ident:
				if name == "" {
					name = c.Value
				}
			case ast.TypeRef:
				typ = strings.TrimSuffix(c.Children[0].Value, "[]")
			}
		}
	}
	return name, typ
}

func isPrimitiveType(t string) bool {
	switch t {
	case "boolean", "byte", "char", "short", "int", "long", "float",
		"double", "void", "var", "String":
		return true
	}
	return strings.HasSuffix(t, "[]")
}

func findChild(n *ast.Node, k ast.Kind) *ast.Node {
	for _, c := range n.Children {
		if c.Kind == k {
			return c
		}
	}
	return nil
}

func (a *analyzer) genStmts(stmts []*ast.Node, s *scope) {
	for _, st := range stmts {
		a.genStmt(st, s)
	}
}

func (a *analyzer) genStmt(n *ast.Node, s *scope) {
	switch n.Kind {
	case ast.Assign:
		val := a.genExpr(n.Children[len(n.Children)-1], s)
		typ := ""
		if v := n.Children[len(n.Children)-1]; v.Kind == ast.Call || v.Kind == ast.New {
			typ = a.staticTypeOf(v, s)
		}
		for _, tgt := range n.Children[:len(n.Children)-1] {
			a.bindTarget(tgt, val, typ, s)
		}
	case ast.AugAssign:
		a.genExpr(n.Children[2], s)
		if tgt := n.Children[0]; tgt.Kind == ast.NameStore {
			name := tgt.Children[0].Value
			old, bound := s.env[name]
			s.env[name] = verNext(s, name)
			key := a.varKey(s, name, s.env[name])
			if bound {
				a.eng.Assert("Move", key, a.varKey(s, name, old))
			}
			a.eng.Assert("Modified", key)
			a.record(tgt, key, s)
		}
	case ast.AnnAssign:
		typ := ""
		if tr := findChild(n, ast.TypeRef); tr != nil {
			typ = exprNameOfTypeRef(tr)
		}
		val := ""
		if len(n.Children) > 2 {
			val = a.genExpr(n.Children[len(n.Children)-1], s)
		}
		a.bindTargetTyped(n.Children[0], val, typ, s)
	case ast.LocalVarDecl, ast.FieldDecl:
		a.genVarDecl(n, s)
	case ast.ExprStmt:
		for _, c := range n.Children {
			a.genExpr(c, s)
		}
	case ast.Return:
		for _, c := range n.Children {
			if v := a.genExpr(c, s); v != "" {
				a.eng.Assert("Move", a.retKey(s.fnID, s.ctx), v)
			}
		}
	case ast.If:
		a.genExpr(n.Children[0], s)
		var branches []*scope
		sawElse := false
		for _, c := range n.Children[1:] {
			switch c.Kind {
			case ast.Body:
				b := s.clone()
				a.genStmts(c.Children, b)
				branches = append(branches, b)
			case ast.Elif:
				b := s.clone()
				a.genExpr(c.Children[0], b)
				if body := findChild(c, ast.Body); body != nil {
					a.genStmts(body.Children, b)
				}
				branches = append(branches, b)
			case ast.Else:
				sawElse = true
				b := s.clone()
				if body := findChild(c, ast.Body); body != nil {
					a.genStmts(body.Children, b)
				}
				branches = append(branches, b)
			}
		}
		if !sawElse {
			branches = append(branches, s.clone()) // fall-through path
		}
		a.mergeScopes(s, branches)
	case ast.While, ast.DoWhile:
		for _, c := range n.Children {
			if c.Kind == ast.Body || c.Kind == ast.Else {
				b := s.clone()
				body := c
				if c.Kind == ast.Else {
					body = findChild(c, ast.Body)
				}
				if body != nil {
					a.genStmts(body.Children, b)
				}
				a.mergeScopes(s, []*scope{b, s.clone()})
			} else {
				a.genExpr(c, s)
			}
		}
	case ast.For:
		// Python: For(target, iter, Body, [Else]); Java: For(init..., cond,
		// update..., Body).
		if a.info.Lang == ast.Python && len(n.Children) >= 2 {
			iter := a.genExpr(n.Children[1], s)
			elem := a.tmpKey(s)
			if iter != "" {
				a.eng.Assert("Load", elem, iter, "[]")
			}
			a.bindTarget(n.Children[0], elem, "", s)
			for _, c := range n.Children[2:] {
				a.genBodyBranch(c, s)
			}
			return
		}
		for _, c := range n.Children {
			switch {
			case c.Kind == ast.Body || c.Kind == ast.Else:
				a.genBodyBranch(c, s)
			case ast.IsStatementKind(c.Kind) || c.Kind == ast.Block:
				a.genStmt(c, s)
			default:
				a.genExpr(c, s)
			}
		}
	case ast.ForEach:
		// ForEach(TypeRef, NameStore, iter, Body)
		typ := exprNameOfTypeRef(n.Children[0])
		iter := a.genExpr(n.Children[2], s)
		elem := a.tmpKey(s)
		if iter != "" {
			a.eng.Assert("Load", elem, iter, "[]")
		}
		a.bindTargetTyped(n.Children[1], elem, typ, s)
		for _, c := range n.Children[3:] {
			a.genBodyBranch(c, s)
		}
	case ast.Try:
		for _, c := range n.Children {
			switch c.Kind {
			case ast.Body:
				a.genStmts(c.Children, s)
			case ast.ExceptHandler:
				b := s.clone()
				a.genExceptHandler(c, b)
				a.mergeScopes(s, []*scope{b, s.clone()})
			case ast.Else, ast.Finally:
				if body := findChild(c, ast.Body); body != nil {
					a.genStmts(body.Children, s)
				}
			case ast.WithItem:
				a.genWithItem(c, s)
			}
		}
	case ast.With:
		for _, c := range n.Children {
			switch c.Kind {
			case ast.WithItem:
				a.genWithItem(c, s)
			case ast.Body:
				a.genStmts(c.Children, s)
			}
		}
	case ast.ExceptHandler:
		a.genExceptHandler(n, s)
	case ast.Switch:
		a.genExpr(n.Children[0], s)
		if body := findChild(n, ast.Body); body != nil {
			var branches []*scope
			for _, cc := range body.Children {
				if cc.Kind == ast.CaseClause {
					b := s.clone()
					for _, stc := range cc.Children {
						if ast.IsStatementKind(stc.Kind) || stc.Kind == ast.Block ||
							stc.Kind == ast.Break || stc.Kind == ast.Return {
							a.genStmt(stc, b)
						} else {
							a.genExpr(stc, b)
						}
					}
					branches = append(branches, b)
				}
			}
			branches = append(branches, s.clone())
			a.mergeScopes(s, branches)
		}
	case ast.Block, ast.Body, ast.SyncBlock, ast.LabeledStmt, ast.CaseClause:
		for _, c := range n.Children {
			if ast.IsStatementKind(c.Kind) || c.Kind == ast.Block || c.Kind == ast.Body {
				a.genStmt(c, s)
			} else {
				a.genExpr(c, s)
			}
		}
	case ast.Raise, ast.Throw, ast.Delete, ast.AssertStmt, ast.Yield:
		for _, c := range n.Children {
			a.genExpr(c, s)
		}
	case ast.FunctionDef, ast.CtorDef, ast.ClassDef, ast.InterfaceDef, ast.EnumDef:
		// Nested definitions are analyzed as their own entry points only
		// when collected at top level; nested ones are skipped here.
	case ast.Import, ast.ImportFrom, ast.Pass, ast.Break, ast.Continue,
		ast.Global, ast.Nonlocal, ast.EmptyStmt, ast.PackageDecl:
		// No dataflow.
	default:
		// Fallback: treat unknown statement-like nodes as expressions.
		a.genExpr(n, s)
	}
}

func (a *analyzer) genBodyBranch(c *ast.Node, s *scope) {
	body := c
	if c.Kind == ast.Else {
		body = findChild(c, ast.Body)
	}
	if body == nil {
		return
	}
	b := s.clone()
	a.genStmts(body.Children, b)
	a.mergeScopes(s, []*scope{b, s.clone()})
}

func (a *analyzer) genWithItem(c *ast.Node, s *scope) {
	val := ""
	for _, ch := range c.Children {
		switch ch.Kind {
		case ast.NameStore, ast.TupleLit:
			a.bindTarget(ch, val, "", s)
		case ast.LocalVarDecl:
			a.genVarDecl(ch, s)
		default:
			val = a.genExpr(ch, s)
		}
	}
}

func (a *analyzer) genExceptHandler(c *ast.Node, s *scope) {
	var typ string
	for _, ch := range c.Children {
		switch ch.Kind {
		case ast.TypeRef:
			typ = exprNameOfTypeRef(ch)
		case ast.NameLoad, ast.AttributeLoad:
			typ = exprName(ch)
			a.genExpr(ch, s)
		case ast.NameStore:
			name := ch.Children[0].Value
			s.env[name] = verNext(s, name)
			key := a.varKey(s, name, s.env[name])
			if typ != "" {
				a.eng.Assert("Alloc", key, "H:"+typ)
			}
			a.record(ch, key, s)
		case ast.Body:
			a.genStmts(ch.Children, s)
		}
	}
}

func (a *analyzer) genVarDecl(n *ast.Node, s *scope) {
	typ := ""
	var target *ast.Node
	val := ""
	hasInit := false
	for _, c := range n.Children {
		switch c.Kind {
		case ast.TypeRef:
			typ = exprNameOfTypeRef(c)
		case ast.NameStore:
			target = c
		case ast.Modifiers:
		default:
			val = a.genExpr(c, s)
			hasInit = true
		}
	}
	if target == nil {
		return
	}
	if !hasInit || val == "" {
		a.bindTargetTyped(target, "", typ, s)
		return
	}
	a.bindTargetTyped(target, val, typ, s)
}

// staticTypeOf returns the in-file class a constructor-like expression
// instantiates, if statically evident.
func (a *analyzer) staticTypeOf(n *ast.Node, s *scope) string {
	switch n.Kind {
	case ast.New:
		t := exprNameOfTypeRef(n.Children[0])
		if _, ok := a.info.Classes[t]; ok {
			return t
		}
	case ast.Call:
		if callee := n.Children[0]; callee.Kind == ast.NameLoad {
			name := callee.Children[0].Value
			if _, ok := a.info.Classes[name]; ok {
				return name
			}
		}
	}
	return ""
}

// bindTarget assigns valKey to a target expression (store context),
// creating a fresh variable version.
func (a *analyzer) bindTarget(tgt *ast.Node, valKey, typ string, s *scope) {
	a.bindTargetTyped(tgt, valKey, typ, s)
}

func (a *analyzer) bindTargetTyped(tgt *ast.Node, valKey, typ string, s *scope) {
	switch tgt.Kind {
	case ast.NameStore:
		name := tgt.Children[0].Value
		s.env[name] = verNext(s, name)
		key := a.varKey(s, name, s.env[name])
		if valKey != "" {
			a.eng.Assert("Move", key, valKey)
		} else if typ != "" && !isPrimitiveType(typ) && a.info.Lang != ast.Python {
			// Declared type as fallback origin for statically typed
			// languages (Java, Go).
			a.eng.Assert("Alloc", key, "H:"+typ)
		}
		if typ != "" {
			if _, ok := a.info.Classes[typ]; ok {
				s.types[name] = typ
			} else {
				delete(s.types, name)
			}
		} else {
			delete(s.types, name)
		}
		a.record(tgt, key, s)
	case ast.AttributeStore:
		obj, attr := tgt.Children[0], attrName(tgt)
		var objKey string
		if obj.Kind == ast.NameLoad && len(obj.Children) == 1 &&
			isSelfName(obj.Children[0].Value) && s.class != nil {
			// Stores through self get the generic Object origin (the
			// paper's Example 3.8 decorates `self.<name1> = <name2>` with
			// Object, not the class name), so consistency patterns
			// generalize across classes. The attribute gets no origin.
			a.setDirect(obj.Children[0], "Object")
			name := obj.Children[0].Value
			if v, ok := s.env[name]; ok {
				objKey = a.varKey(s, name, v)
			}
		} else {
			objKey = a.genReceiver(obj, attrLeaf(tgt), attr, s)
		}
		if objKey != "" && valKey != "" {
			a.eng.Assert("Store", objKey, attr, valKey)
		}
	case ast.SubscriptStore:
		objKey := a.genExpr(tgt.Children[0], s)
		for _, c := range tgt.Children[1:] {
			a.genExpr(c, s)
		}
		if objKey != "" && valKey != "" {
			a.eng.Assert("Store", objKey, "[]", valKey)
		}
	case ast.TupleLit, ast.ListLit:
		for _, c := range tgt.Children {
			a.bindTarget(c, "", "", s)
		}
	case ast.StarArg:
		for _, c := range tgt.Children {
			a.bindTarget(c, "", "", s)
		}
	default:
		a.genExpr(tgt, s)
	}
}

func verNext(s *scope, name string) int {
	if v, ok := s.env[name]; ok {
		return v + 1
	}
	return 1
}

// record notes that the identifier terminal under a name node holds the
// value of key (for later origin extraction).
func (a *analyzer) record(nameNode *ast.Node, key string, s *scope) {
	if len(nameNode.Children) == 0 {
		return
	}
	id := nameNode.Children[0]
	if id.Kind != ast.Ident {
		return
	}
	if isSelfName(id.Value) && s.class != nil {
		a.setDirect(id, s.class.Name)
		return
	}
	a.occ[id] = append(a.occ[id], key)
}

func (a *analyzer) setDirect(n *ast.Node, origin string) {
	if origin != "" {
		a.direct[n] = origin
	}
}

func attrLeaf(n *ast.Node) *ast.Node {
	if len(n.Children) == 2 && n.Children[1].Kind == ast.Attr &&
		len(n.Children[1].Children) == 1 {
		return n.Children[1].Children[0]
	}
	return nil
}

// genReceiver evaluates the receiver of an attribute access/call and
// handles origin decoration of both the receiver identifier and the
// attribute identifier. attrID may be nil.
func (a *analyzer) genReceiver(obj *ast.Node, attrID *ast.Node, attr string, s *scope) string {
	if obj.Kind == ast.NameLoad && len(obj.Children) == 1 {
		name := obj.Children[0].Value
		if isSelfName(name) && s.class != nil {
			// Fig. 2: self and the attribute both get the defining class.
			def := a.info.DefiningClass(s.class.Name, attr)
			a.setDirect(obj.Children[0], def)
			if attrID != nil {
				a.setDirect(attrID, def)
			}
			if v, ok := s.env[name]; ok {
				return a.varKey(s, name, v)
			}
			// self outside a parameter binding (module scope): synthesize.
			s.env[name] = 0
			key := a.varKey(s, name, 0)
			a.eng.Assert("Alloc", key, "I:"+s.class.Name)
			return key
		}
		if mod, ok := a.info.Imports[name]; ok {
			if _, bound := s.env[name]; !bound {
				key := a.moduleKey(name, mod)
				a.setDirect(obj.Children[0], lastComponent(mod))
				if attrID != nil {
					a.setDirect(attrID, lastComponent(mod))
				}
				return key
			}
		}
		// Statically-typed in-file receiver: hierarchy lookup for the attr.
		if t, ok := s.types[name]; ok && attrID != nil {
			a.setDirect(attrID, a.info.DefiningClass(t, attr))
		}
	}
	key := a.genExpr(obj, s)
	if attrID != nil && key != "" {
		a.recv[attrID] = append(a.recv[attrID], key)
	}
	return key
}

func (a *analyzer) moduleKey(alias, mod string) string {
	if k, ok := a.moduleKeys[alias]; ok {
		return k
	}
	k := "/import/" + alias
	a.eng.Assert("Alloc", k, "H:"+mod)
	a.moduleKeys[alias] = k
	return k
}

// genExpr emits facts for an expression and returns the variable key
// holding its value ("" when the value has no tracked origin).
func (a *analyzer) genExpr(n *ast.Node, s *scope) string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case ast.NameLoad:
		name := n.Children[0].Value
		if isSelfName(name) && s.class != nil {
			a.setDirect(n.Children[0], s.class.Name)
			if v, ok := s.env[name]; ok {
				return a.varKey(s, name, v)
			}
			return ""
		}
		if v, ok := s.env[name]; ok {
			key := a.varKey(s, name, v)
			a.occ[n.Children[0]] = append(a.occ[n.Children[0]], key)
			return key
		}
		if mod, ok := a.info.Imports[name]; ok {
			a.setDirect(n.Children[0], lastComponent(mod))
			return a.moduleKey(name, mod)
		}
		if _, ok := a.info.Classes[name]; ok {
			key := "/class/" + name
			a.eng.Assert("Alloc", key, "C:"+name)
			return key
		}
		return ""
	case ast.Call:
		return a.genCall(n, s)
	case ast.New:
		return a.genNew(n, s)
	case ast.AttributeLoad:
		objKey := a.genReceiver(n.Children[0], attrLeaf(n), attrName(n), s)
		ret := a.tmpKey(s)
		if objKey != "" {
			a.eng.Assert("Load", ret, objKey, attrName(n))
		}
		return ret
	case ast.SubscriptLoad:
		objKey := a.genExpr(n.Children[0], s)
		for _, c := range n.Children[1:] {
			a.genExpr(c, s)
		}
		ret := a.tmpKey(s)
		if objKey != "" {
			a.eng.Assert("Load", ret, objKey, "[]")
		}
		return ret
	case ast.Ternary:
		// value if cond else other / cond ? a : b — merge both arms.
		ret := a.tmpKey(s)
		for _, c := range n.Children {
			if v := a.genExpr(c, s); v != "" {
				a.eng.Assert("Move", ret, v)
			}
		}
		return ret
	case ast.Cast:
		typ := exprNameOfTypeRef(n.Children[0])
		v := a.genExpr(n.Children[1], s)
		if v != "" {
			return v
		}
		if typ != "" && !isPrimitiveType(typ) {
			ret := a.tmpKey(s)
			a.eng.Assert("Alloc", ret, "H:"+typ)
			return ret
		}
		return ""
	case ast.Assign, ast.AugAssign:
		// Assignment used in expression position (Java).
		a.genStmt(n, s)
		return ""
	case ast.Index, ast.SliceRange, ast.Keyword, ast.StarArg,
		ast.DoubleStarArg, ast.DictItem, ast.Comprehension, ast.CompFor,
		ast.CompIf, ast.Lambda, ast.ListLit, ast.TupleLit, ast.DictLit,
		ast.SetLit, ast.ArrayLit, ast.BinOp, ast.UnaryOp, ast.BoolOp,
		ast.Compare, ast.InstanceOf, ast.Yield:
		for _, c := range n.Children {
			a.genExpr(c, s)
		}
		return ""
	case ast.Num, ast.Str, ast.Bool, ast.Null, ast.TypeRef, ast.Ident,
		ast.OpTok, ast.NumLit, ast.StrLit, ast.BoolLit, ast.NullLit:
		return ""
	}
	for _, c := range n.Children {
		a.genExpr(c, s)
	}
	return ""
}

// genCall handles Call nodes: direct calls, constructor calls, and method
// calls with in-file resolution and k-call-site context expansion.
func (a *analyzer) genCall(n *ast.Node, s *scope) string {
	a.siteID++
	site := fmt.Sprint(a.siteID)
	callee := n.Children[0]
	args := n.Children[1:]
	var argKeys []string
	for _, arg := range args {
		switch arg.Kind {
		case ast.Keyword:
			if len(arg.Children) == 2 {
				argKeys = append(argKeys, a.genExpr(arg.Children[1], s))
			}
		case ast.StarArg, ast.DoubleStarArg:
			if len(arg.Children) == 1 {
				a.genExpr(arg.Children[0], s)
			}
			argKeys = append(argKeys, "")
		default:
			argKeys = append(argKeys, a.genExpr(arg, s))
		}
	}

	switch callee.Kind {
	case ast.NameLoad:
		name := callee.Children[0].Value
		if cls, ok := a.info.Classes[name]; ok {
			// Constructor call to an in-file class.
			ret := a.tmpKey(s)
			a.eng.Assert("Alloc", ret, "I:"+name)
			if init, ok := cls.Methods["__init__"]; ok {
				a.callInFile(cls.Name+".__init__", init, cls, ret, argKeys, site, s)
			} else if ctor, ok := cls.Methods[name]; ok {
				a.callInFile(cls.Name+"."+name, ctor, cls, ret, argKeys, site, s)
			}
			return ret
		}
		if fn, ok := a.info.Funcs[name]; ok {
			return a.callInFile(name, fn, nil, "", argKeys, site, s)
		}
		// External function: fresh allocation site labeled by callee.
		ret := a.tmpKey(s)
		a.eng.Assert("Alloc", ret, "H:"+name)
		return ret
	case ast.AttributeLoad:
		obj, attr := callee.Children[0], attrName(callee)
		aID := attrLeaf(callee)
		// self.method() resolved through the in-file hierarchy.
		if obj.Kind == ast.NameLoad && isSelfName(obj.Children[0].Value) && s.class != nil {
			def := a.info.DefiningClass(s.class.Name, attr)
			a.setDirect(obj.Children[0], def)
			if aID != nil {
				a.setDirect(aID, def)
			}
			selfKey := ""
			if v, ok := s.env[obj.Children[0].Value]; ok {
				selfKey = a.varKey(s, obj.Children[0].Value, v)
			}
			if cls, m := a.info.ResolveMethod(s.class.Name, attr); cls != nil {
				return a.callInFile(cls.Name+"."+attr, m, cls, selfKey, argKeys, site, s)
			}
			ret := a.tmpKey(s)
			a.eng.Assert("Alloc", ret, "H:"+attr)
			return ret
		}
		objKey := a.genReceiver(obj, aID, attr, s)
		// Statically-typed in-file receiver: resolve the method.
		if obj.Kind == ast.NameLoad {
			if t, ok := s.types[obj.Children[0].Value]; ok {
				if cls, m := a.info.ResolveMethod(t, attr); cls != nil {
					return a.callInFile(cls.Name+"."+attr, m, cls, objKey, argKeys, site, s)
				}
			}
		}
		ret := a.tmpKey(s)
		a.eng.Assert("Alloc", ret, "H:"+attr)
		return ret
	default:
		a.genExpr(callee, s)
		return a.tmpKey(s)
	}
}

func (a *analyzer) genNew(n *ast.Node, s *scope) string {
	typ := exprNameOfTypeRef(n.Children[0])
	base := strings.TrimSuffix(typ, "[]")
	var argKeys []string
	for _, arg := range n.Children[1:] {
		argKeys = append(argKeys, a.genExpr(arg, s))
	}
	ret := a.tmpKey(s)
	if cls, ok := a.info.Classes[base]; ok {
		a.eng.Assert("Alloc", ret, "I:"+base)
		a.siteID++
		if ctor, ok := cls.Methods[base]; ok {
			a.callInFile(base+"."+base, ctor, cls, ret, argKeys, fmt.Sprint(a.siteID), s)
		}
	} else {
		a.eng.Assert("Alloc", ret, "H:"+base)
	}
	return ret
}

// callInFile wires an interprocedural call to a function or method defined
// in the file, pushing a k-limited call-site context, and returns the key
// receiving the return value.
func (a *analyzer) callInFile(fnID string, fnNode *ast.Node, cls *ClassInfo,
	selfKey string, argKeys []string, site string, s *scope) string {
	newCtx := pushContext(s.ctx, site, a.k)
	if key := fnID + "@" + newCtx; !a.done[key] {
		a.queue = append(a.queue, task{fnID: fnID, ctx: newCtx, node: fnNode, class: cls})
	}
	callee := &scope{fnID: fnID, ctx: newCtx, class: cls}
	params := findChild(fnNode, ast.Params)
	pi := 0
	if params != nil {
		for i, p := range params.Children {
			name, _ := paramNameType(p)
			if name == "" {
				continue
			}
			formal := a.varKey(callee, name, 0)
			if i == 0 && cls != nil && isSelfName(name) && a.info.Lang == ast.Python {
				if selfKey != "" {
					a.eng.Assert("Move", formal, selfKey)
				}
				continue
			}
			if pi < len(argKeys) && argKeys[pi] != "" {
				a.eng.Assert("Move", formal, argKeys[pi])
			}
			pi++
		}
	}
	if cls != nil && a.info.Lang == ast.Java && selfKey != "" {
		a.eng.Assert("Move", a.varKey(callee, "this", 0), selfKey)
	}
	ret := a.tmpKey(s)
	a.eng.Assert("Move", ret, a.retKey(fnID, newCtx))
	return ret
}

// pushContext appends a call site to a context string, keeping at most k
// sites (most recent last).
func pushContext(ctx, site string, k int) string {
	if k <= 0 {
		return ""
	}
	parts := []string{}
	if ctx != "" {
		parts = strings.Split(ctx, "|")
	}
	parts = append(parts, site)
	if len(parts) > k {
		parts = parts[len(parts)-k:]
	}
	return strings.Join(parts, "|")
}

func exprNameOfTypeRef(n *ast.Node) string {
	if n.Kind == ast.TypeRef && len(n.Children) == 1 {
		return strings.TrimSuffix(n.Children[0].Value, "[]")
	}
	return exprName(n)
}

func (a *analyzer) mergeScopes(s *scope, branches []*scope) {
	// Union of assigned variables across branches.
	names := map[string]bool{}
	for _, b := range branches {
		for n, v := range b.env {
			if s.env[n] != v {
				names[n] = true
			}
		}
	}
	for n := range names {
		// The merged version must exceed every branch's version (branches
		// share the function-scoped key space).
		merged := verNext(s, n)
		for _, b := range branches {
			if v, ok := b.env[n]; ok && v >= merged {
				merged = v + 1
			}
		}
		for _, b := range branches {
			if v, ok := b.env[n]; ok {
				a.eng.Assert("Move", a.varKey(s, n, merged), a.varKey(s, n, v))
			}
		}
		s.env[n] = merged
		// Types diverge: keep only if all branches agree.
		t := ""
		agree := true
		for _, b := range branches {
			bt := b.types[n]
			if t == "" {
				t = bt
			} else if bt != t {
				agree = false
			}
		}
		if agree && t != "" {
			s.types[n] = t
		} else {
			delete(s.types, n)
		}
	}
}
