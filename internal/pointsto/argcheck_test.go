package pointsto

import (
	"testing"

	"namer/internal/ast"
)

func TestArgumentSelectionPython(t *testing.T) {
	src := `def clamp(low, high):
    return low if low < high else high

class Box:
    def resize(self, width, height):
        self.width = width
        self.height = height

    def grow(self, width, height):
        self.resize(height, width)

def use(width, height, low, high):
    clamp(high, low)
    clamp(low, high)
    clamp(low, width)
`
	root := parsePy(t, src)
	swaps := CheckArgumentSelection(root, ast.Python)
	if len(swaps) != 2 {
		t.Fatalf("swaps = %+v, want 2", swaps)
	}
	// Method call swap (self skipped).
	foundMethod, foundDirect := false, false
	for _, sw := range swaps {
		switch sw.Callee {
		case "resize":
			foundMethod = true
			if sw.ArgA != "height" || sw.ArgB != "width" {
				t.Errorf("resize swap = %+v", sw)
			}
		case "clamp":
			foundDirect = true
			if sw.ArgA != "high" || sw.ArgB != "low" {
				t.Errorf("clamp swap = %+v", sw)
			}
		}
	}
	if !foundMethod || !foundDirect {
		t.Errorf("missing swaps: %+v", swaps)
	}
}

func TestArgumentSelectionJava(t *testing.T) {
	src := `class Painter {
    void render(int x, int y) { }

    void paint(int x, int y) {
        this.render(y, x);
        this.render(x, y);
    }
}
`
	root := parseJava(t, src)
	swaps := CheckArgumentSelection(root, ast.Java)
	if len(swaps) != 1 {
		t.Fatalf("swaps = %+v, want 1", swaps)
	}
	if swaps[0].Callee != "render" || swaps[0].ArgA != "y" {
		t.Errorf("swap = %+v", swaps[0])
	}
}

func TestArgumentSelectionNoFalsePositives(t *testing.T) {
	src := `def pair(first, second):
    return (first, second)

def use(a, b, first, second):
    pair(a, b)
    pair(first, second)
    pair(second, second)
    other(second, first)
`
	root := parsePy(t, src)
	if swaps := CheckArgumentSelection(root, ast.Python); len(swaps) != 0 {
		t.Errorf("unexpected swaps: %+v", swaps)
	}
}

func TestArgumentSelectionExternalCalleeIgnored(t *testing.T) {
	src := `def use(low, high):
    external(high, low)
`
	root := parsePy(t, src)
	if swaps := CheckArgumentSelection(root, ast.Python); len(swaps) != 0 {
		t.Errorf("external callee should be skipped: %+v", swaps)
	}
}
