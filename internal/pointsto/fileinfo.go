// Package pointsto implements the per-file static analyses of §4.1: a
// flow- and context-sensitive Andersen-style points-to analysis with
// k-call-site sensitivity expressed in Datalog, plus a value-origin
// dataflow for primitives. Its product is an origin label per identifier
// occurrence, which the AST+ transformation (package astplus) inserts as
// origin nodes.
//
// Every file is analyzed in isolation; every public method or function is
// a possible entry point; any function or method defined outside the file
// is considered to return a fresh allocation site labeled with the callee
// name. The analysis is therefore not sound, which §4.1 notes is not a
// requirement in this setting.
package pointsto

import (
	"strings"

	"namer/internal/ast"
)

// ClassInfo describes a class defined in the analyzed file.
type ClassInfo struct {
	Name    string
	Bases   []string // base names in declaration order (possibly dotted)
	Methods map[string]*ast.Node
	Fields  map[string]bool
	Node    *ast.Node
}

// FileInfo indexes the classes, module-level functions, and imports of a
// single source file.
type FileInfo struct {
	Lang    ast.Language
	Classes map[string]*ClassInfo
	Funcs   map[string]*ast.Node
	// Imports maps a local alias to the imported dotted path
	// (`import numpy as np` yields np -> numpy).
	Imports map[string]string
}

// Collect builds the FileInfo for a parsed file.
func Collect(root *ast.Node, lang ast.Language) *FileInfo {
	fi := &FileInfo{
		Lang:    lang,
		Classes: make(map[string]*ClassInfo),
		Funcs:   make(map[string]*ast.Node),
		Imports: make(map[string]string),
	}
	for _, c := range root.Children {
		switch c.Kind {
		case ast.ClassDef, ast.InterfaceDef, ast.EnumDef:
			fi.collectClass(c)
		case ast.FunctionDef:
			if name := childIdent(c); name != "" {
				fi.Funcs[name] = c
			}
		case ast.Import:
			fi.collectImport(c)
		case ast.ImportFrom:
			fi.collectImportFrom(c)
		}
	}
	return fi
}

func (fi *FileInfo) collectClass(c *ast.Node) {
	info := &ClassInfo{
		Name:    childIdent(c),
		Methods: make(map[string]*ast.Node),
		Fields:  make(map[string]bool),
		Node:    c,
	}
	for _, ch := range c.Children {
		switch ch.Kind {
		case ast.Bases:
			for _, b := range ch.Children {
				if name := exprName(b); name != "" {
					info.Bases = append(info.Bases, name)
				}
			}
		case ast.Body:
			for _, m := range ch.Children {
				switch m.Kind {
				case ast.FunctionDef, ast.CtorDef:
					if name := childIdent(m); name != "" {
						info.Methods[name] = m
					}
					// Python instance fields assigned through self.
					m.Walk(func(n *ast.Node) bool {
						if n.Kind == ast.AttributeStore && len(n.Children) == 2 {
							if recv := n.Children[0]; recv.Kind == ast.NameLoad &&
								isSelfName(recv.Children[0].Value) {
								info.Fields[attrName(n)] = true
							}
						}
						return true
					})
				case ast.FieldDecl:
					for _, f := range m.Children {
						if f.Kind == ast.NameStore {
							info.Fields[f.Children[0].Value] = true
						}
					}
				case ast.Assign:
					// Python class attribute: NAME = value at class level.
					if t := m.Children[0]; t.Kind == ast.NameStore {
						info.Fields[t.Children[0].Value] = true
					}
				case ast.ClassDef, ast.InterfaceDef, ast.EnumDef:
					fi.collectClass(m)
				}
			}
		}
	}
	if info.Name != "" {
		fi.Classes[info.Name] = info
	}
}

func (fi *FileInfo) collectImport(c *ast.Node) {
	for _, al := range c.Children {
		if al.Kind != ast.ImportAlias || len(al.Children) == 0 {
			continue
		}
		path := al.Children[0].Value
		local := path
		if len(al.Children) > 1 {
			local = al.Children[1].Value
		} else {
			// `import os.path` binds os; `import java.util.List` binds List.
			if i := strings.Index(path, "."); i >= 0 {
				if fi.Lang == ast.Java {
					local = path[strings.LastIndex(path, ".")+1:]
				} else {
					local = path[:i]
					path = local
				}
			}
		}
		if strings.HasSuffix(local, ".*") || local == "*" {
			continue
		}
		fi.Imports[local] = path
	}
}

func (fi *FileInfo) collectImportFrom(c *ast.Node) {
	if len(c.Children) == 0 {
		return
	}
	module := c.Children[0].Value
	for _, al := range c.Children[1:] {
		if al.Kind != ast.ImportAlias || len(al.Children) == 0 {
			continue
		}
		name := al.Children[0].Value
		if name == "*" {
			continue
		}
		local := name
		if len(al.Children) > 1 {
			local = al.Children[1].Value
		}
		fi.Imports[local] = module + "." + name
	}
}

// DefiningClass resolves the class that defines attr, starting the lookup
// at class name. It walks the in-file hierarchy; if the attribute cannot be
// found and an external base exists along the walk, the first external base
// name is returned (the Fig. 2 behavior: assertTrue on TestPicture resolves
// to TestCase). With no bases at all, the starting class name is returned.
func (fi *FileInfo) DefiningClass(class, attr string) string {
	seen := map[string]bool{}
	var walk func(name string) (string, bool)
	walk = func(name string) (string, bool) {
		if seen[name] {
			return "", false
		}
		seen[name] = true
		info, ok := fi.Classes[name]
		if !ok {
			// External class: attribute assumed defined here.
			return lastComponent(name), true
		}
		if _, defined := info.Methods[attr]; defined || info.Fields[attr] {
			return name, true
		}
		for _, b := range info.Bases {
			if res, ok := walk(b); ok {
				return res, true
			}
		}
		return "", false
	}
	if res, ok := walk(class); ok {
		return res
	}
	return class
}

// ResolveMethod finds the in-file class along the hierarchy of class that
// defines method attr, returning its ClassInfo and the method node, or nil
// if the method is external.
func (fi *FileInfo) ResolveMethod(class, attr string) (*ClassInfo, *ast.Node) {
	seen := map[string]bool{}
	cur := class
	for !seen[cur] {
		seen[cur] = true
		info, ok := fi.Classes[cur]
		if !ok {
			return nil, nil
		}
		if m, ok := info.Methods[attr]; ok {
			return info, m
		}
		if len(info.Bases) == 0 {
			return nil, nil
		}
		cur = info.Bases[0]
	}
	return nil, nil
}

func childIdent(n *ast.Node) string {
	for _, c := range n.Children {
		if c.Kind == ast.Ident {
			return c.Value
		}
	}
	return ""
}

// exprName renders a simple name expression (NameLoad, dotted attribute
// chain, TypeRef) as a dotted string; "" if the expression is not a name.
func exprName(n *ast.Node) string {
	switch n.Kind {
	case ast.NameLoad, ast.NameStore:
		return n.Children[0].Value
	case ast.TypeRef:
		return strings.TrimSuffix(n.Children[0].Value, "[]")
	case ast.AttributeLoad:
		base := exprName(n.Children[0])
		if base == "" {
			return ""
		}
		return base + "." + attrName(n)
	case ast.Ident:
		return n.Value
	}
	return ""
}

// attrName returns the attribute identifier of an AttributeLoad/Store.
func attrName(n *ast.Node) string {
	if len(n.Children) == 2 && n.Children[1].Kind == ast.Attr {
		return n.Children[1].Children[0].Value
	}
	return ""
}

func isSelfName(s string) bool { return s == "self" || s == "this" }

func lastComponent(s string) string {
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}
