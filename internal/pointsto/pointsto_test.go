package pointsto

import (
	"testing"

	"namer/internal/ast"
	"namer/internal/javalang"
	"namer/internal/pylang"
)

func parsePy(t *testing.T, src string) *ast.Node {
	t.Helper()
	root, err := pylang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func parseJava(t *testing.T, src string) *ast.Node {
	t.Helper()
	root, err := javalang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// originAt finds the Ident terminal with the given value (nth occurrence)
// and returns its origin.
func originAt(res *Result, root *ast.Node, value string, occurrence int) (string, bool) {
	var found *ast.Node
	count := 0
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.Ident && n.Value == value {
			if count == occurrence {
				found = n
			}
			count++
		}
		return true
	})
	if found == nil {
		return "", false
	}
	return res.OriginOf(found)
}

func TestFigure2SelfOrigin(t *testing.T) {
	src := `class TestPicture(TestCase):
    def test_angle_picture(self):
        self.assertTrue(picture.rotate_angle, 90)
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	// Both self and assertTrue resolve to the external base TestCase.
	var selfID, attrID *ast.Node
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.AttributeLoad && attrName(n) == "assertTrue" {
			selfID = n.Children[0].Children[0]
			attrID = n.Children[1].Children[0]
		}
		return true
	})
	if selfID == nil {
		t.Fatal("assertTrue access not found")
	}
	if o, ok := res.OriginOf(selfID); !ok || o != "TestCase" {
		t.Errorf("origin(self) = %q,%v; want TestCase", o, ok)
	}
	if o, ok := res.OriginOf(attrID); !ok || o != "TestCase" {
		t.Errorf("origin(assertTrue) = %q,%v; want TestCase", o, ok)
	}
}

func TestSelfMethodDefinedLocally(t *testing.T) {
	src := `class Widget(Base):
    def helper(self):
        pass
    def run(self):
        self.helper()
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	if o, ok := originAt(res, root, "helper", 1); !ok || o != "Widget" {
		t.Errorf("origin(helper use) = %q,%v; want Widget", o, ok)
	}
}

func TestImportAliasOrigin(t *testing.T) {
	src := `import numpy as N

def f(sz):
    return N.array(sz)
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	if o, ok := originAt(res, root, "N", 1); !ok || o != "numpy" {
		t.Errorf("origin(N) = %q,%v; want numpy", o, ok)
	}
	if o, ok := originAt(res, root, "array", 0); !ok || o != "numpy" {
		t.Errorf("origin(array) = %q,%v; want numpy", o, ok)
	}
}

func TestConstructorFlow(t *testing.T) {
	src := `class Picture:
    def __init__(self):
        self.angle = 0

def f():
    p = Picture()
    q = p
    return q
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	if o, ok := originAt(res, root, "p", 0); !ok || o != "Picture" {
		t.Errorf("origin(p) = %q,%v; want Picture", o, ok)
	}
	if o, ok := originAt(res, root, "q", 0); !ok || o != "Picture" {
		t.Errorf("origin(q store) = %q,%v; want Picture", o, ok)
	}
	if o, ok := originAt(res, root, "q", 1); !ok || o != "Picture" {
		t.Errorf("origin(q use) = %q,%v; want Picture", o, ok)
	}
}

func TestInterproceduralReturn(t *testing.T) {
	src := `class Foo:
    pass

def make():
    return Foo()

def use():
    x = make()
    return x
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	if o, ok := originAt(res, root, "x", 0); !ok || o != "Foo" {
		t.Errorf("origin(x) = %q,%v; want Foo", o, ok)
	}
}

func TestBranchMergeLosesUniqueOrigin(t *testing.T) {
	src := `class A:
    pass
class B:
    pass

def f(cond):
    if cond:
        x = A()
    else:
        x = B()
    return x
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	// Last x (the use in return) must not have a unique origin.
	if o, ok := originAt(res, root, "x", 2); ok {
		t.Errorf("origin(x after merge) = %q; want none", o)
	}
}

func TestModifiedValueIsTop(t *testing.T) {
	src := `def f():
    x = compute()
    x += 1
    return x
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	// First x: origin is compute (external call allocates a fresh site).
	if o, ok := originAt(res, root, "x", 0); !ok || o != "compute" {
		t.Errorf("origin(x before modify) = %q,%v; want compute", o, ok)
	}
	// x after += is modified: no origin.
	if o, ok := originAt(res, root, "x", 2); ok {
		t.Errorf("origin(x after modify) = %q; want none", o)
	}
}

func TestExternalCallFreshSite(t *testing.T) {
	src := `def f():
    data = fetch_remote()
    return data
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	if o, ok := originAt(res, root, "data", 0); !ok || o != "fetch_remote" {
		t.Errorf("origin(data) = %q,%v; want fetch_remote", o, ok)
	}
}

func TestExceptHandlerOrigin(t *testing.T) {
	src := `def f():
    try:
        risky()
    except ValueError as e:
        handle(e)
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	if o, ok := originAt(res, root, "e", 0); !ok || o != "ValueError" {
		t.Errorf("origin(e) = %q,%v; want ValueError", o, ok)
	}
}

func TestJavaCatchAndDeclaredTypes(t *testing.T) {
	src := `public class T {
    void m() {
        StringWriter outputWriter = new StringWriter();
        outputWriter.write("x");
        try {
            risky();
        } catch (Throwable e) {
            e.printStackTrace();
        }
    }
}
`
	root := parseJava(t, src)
	res := AnalyzeFile(root, ast.Java)
	if o, ok := originAt(res, root, "outputWriter", 0); !ok || o != "StringWriter" {
		t.Errorf("origin(outputWriter) = %q,%v; want StringWriter", o, ok)
	}
	if o, ok := originAt(res, root, "e", 0); !ok || o != "Throwable" {
		t.Errorf("origin(e) = %q,%v; want Throwable", o, ok)
	}
}

func TestJavaThisResolution(t *testing.T) {
	src := `public class Worker extends BaseTask {
    void run() {
        this.schedule();
    }
}
`
	root := parseJava(t, src)
	res := AnalyzeFile(root, ast.Java)
	// schedule not defined in Worker: resolves to external base BaseTask.
	if o, ok := originAt(res, root, "schedule", 0); !ok || o != "BaseTask" {
		t.Errorf("origin(schedule) = %q,%v; want BaseTask", o, ok)
	}
}

func TestJavaParamTypeOrigin(t *testing.T) {
	src := `public class T {
    void handle(Intent intent) {
        use(intent);
    }
}
`
	root := parseJava(t, src)
	res := AnalyzeFile(root, ast.Java)
	if o, ok := originAt(res, root, "intent", 1); !ok || o != "Intent" {
		t.Errorf("origin(intent param use) = %q,%v; want Intent", o, ok)
	}
}

func TestDefiningClass(t *testing.T) {
	src := `class Base:
    def shared(self):
        pass

class Mid(Base):
    pass

class Leaf(Mid, External):
    def own(self):
        pass
`
	root := parsePy(t, src)
	fi := Collect(root, ast.Python)
	tests := []struct {
		class, attr, want string
	}{
		{"Leaf", "own", "Leaf"},
		{"Leaf", "shared", "Base"},
		{"Leaf", "unknown", "External"}, // falls to first external base
		{"Base", "unknown", "Base"},     // no bases: the class itself
		{"Mid", "shared", "Base"},
	}
	for _, tt := range tests {
		if got := fi.DefiningClass(tt.class, tt.attr); got != tt.want {
			t.Errorf("DefiningClass(%s, %s) = %q, want %q", tt.class, tt.attr, got, tt.want)
		}
	}
}

func TestCollectImports(t *testing.T) {
	src := `import os
import numpy as np
from unittest import TestCase
from os.path import join as pjoin
`
	root := parsePy(t, src)
	fi := Collect(root, ast.Python)
	want := map[string]string{
		"os":       "os",
		"np":       "numpy",
		"TestCase": "unittest.TestCase",
		"pjoin":    "os.path.join",
	}
	for k, v := range want {
		if fi.Imports[k] != v {
			t.Errorf("Imports[%q] = %q, want %q", k, fi.Imports[k], v)
		}
	}
}

func TestCollectJavaImports(t *testing.T) {
	src := `package p;
import java.util.List;
import java.io.*;
class C {}
`
	root := parseJava(t, src)
	fi := Collect(root, ast.Java)
	if fi.Imports["List"] != "java.util.List" {
		t.Errorf("Imports[List] = %q", fi.Imports["List"])
	}
	if _, ok := fi.Imports["java.io.*"]; ok {
		t.Error("wildcard import should not bind a name")
	}
	if _, ok := fi.Classes["C"]; !ok {
		t.Error("class C not collected")
	}
}

func TestRecursionTerminates(t *testing.T) {
	src := `def a(x):
    return b(x)

def b(x):
    return a(x)
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	if res.Stats.Contexts == 0 {
		t.Error("no contexts analyzed")
	}
}

func TestContextExplosionFallback(t *testing.T) {
	// A call chain with heavy fan-out: every function calls the next from
	// many sites, overflowing k=5 context strings.
	src := ""
	src += "def f0(x):\n    return x\n"
	for i := 1; i <= 12; i++ {
		src += "def f" + string(rune('0'+i%10)) + "x" + "(v):\n    return v\n"
	}
	// Build a chain with multiple call sites per function.
	src = `def leaf(x):
    return x

def l1(x):
    return leaf(leaf(leaf(leaf(x))))

def l2(x):
    return l1(l1(l1(l1(x))))

def l3(x):
    return l2(l2(l2(l2(x))))

def l4(x):
    return l3(l3(l3(l3(x))))

def l5(x):
    return l4(l4(l4(l4(x))))

def l6(x):
    return l5(l5(l5(l5(x))))
`
	root := parsePy(t, src)
	res := Analyze(root, ast.Python, Options{K: 5, MaxAvgContexts: 8})
	if !res.Stats.FellBack {
		t.Errorf("expected context-insensitive fallback, contexts=%d funcs=%d",
			res.Stats.Contexts, res.Stats.Functions)
	}
}

func TestKZeroStillWorks(t *testing.T) {
	src := `class Foo:
    pass

def make():
    return Foo()

def use():
    x = make()
    return x
`
	root := parsePy(t, src)
	res := Analyze(root, ast.Python, Options{K: 0, MaxAvgContexts: 8})
	if o, ok := originAt(res, root, "x", 0); !ok || o != "Foo" {
		t.Errorf("k=0 origin(x) = %q,%v; want Foo", o, ok)
	}
}

func TestSelfFieldFlow(t *testing.T) {
	src := `class Holder:
    def set_item(self, item):
        self._item = item

    def get_item(self):
        return self._item

    def setup(self):
        self.set_item(Payload())

class Payload:
    pass
`
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	_ = res
	// The instance heap connects set_item's store with get_item's load; we
	// only require the analysis to terminate and decorate self.
	if o, ok := originAt(res, root, "self", 1); !ok || o == "" {
		t.Error("self in set_item should have an origin")
	}
}

func TestStatsPopulated(t *testing.T) {
	src := "def f():\n    return g()\n"
	root := parsePy(t, src)
	res := AnalyzeFile(root, ast.Python)
	if res.Stats.Functions < 1 || res.Stats.Contexts < 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Info == nil {
		t.Error("Info missing")
	}
}
