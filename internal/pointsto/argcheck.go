package pointsto

import (
	"namer/internal/ast"
)

// ArgSwap is a suspected argument-selection defect (Rice et al., OOPSLA
// 2017, discussed in §6.1 of the paper): a call to an in-file function
// whose actual argument names match the callee's formal parameter names —
// but at exchanged positions.
type ArgSwap struct {
	Line   int
	Callee string
	PosA   int
	PosB   int
	ArgA   string // actual at PosA (equals the formal at PosB)
	ArgB   string // actual at PosB (equals the formal at PosA)
}

// CheckArgumentSelection scans a file for calls to functions defined in
// the same file where two simple-name arguments exactly cross-match the
// corresponding formal parameter names. This complements the statistical
// swap detection of core.FindSwaps with a precise intra-file check that
// needs no mined patterns.
func CheckArgumentSelection(root *ast.Node, lang ast.Language) []ArgSwap {
	info := Collect(root, lang)
	var out []ArgSwap

	var visit func(n *ast.Node, class string)
	visit = func(n *ast.Node, class string) {
		switch n.Kind {
		case ast.ClassDef, ast.InterfaceDef, ast.EnumDef:
			class = childIdent(n)
		case ast.Call:
			if sw, ok := checkCall(info, n, class, lang); ok {
				out = append(out, sw)
			}
		}
		for _, c := range n.Children {
			visit(c, class)
		}
	}
	visit(root, "")
	return out
}

// checkCall resolves the callee and cross-matches actuals against formals.
func checkCall(info *FileInfo, call *ast.Node, class string, lang ast.Language) (ArgSwap, bool) {
	callee := call.Children[0]
	var fnNode *ast.Node
	var name string
	skipSelf := false
	switch callee.Kind {
	case ast.NameLoad:
		name = callee.Children[0].Value
		fnNode = info.Funcs[name]
	case ast.AttributeLoad:
		recv := callee.Children[0]
		name = attrName(callee)
		if recv.Kind == ast.NameLoad && isSelfName(recv.Children[0].Value) && class != "" {
			if _, m := info.ResolveMethod(class, name); m != nil {
				fnNode = m
				skipSelf = lang == ast.Python
			}
		}
	}
	if fnNode == nil {
		return ArgSwap{}, false
	}
	formals := formalNames(fnNode)
	if skipSelf && len(formals) > 0 && isSelfName(formals[0]) {
		formals = formals[1:]
	}
	actuals := actualNames(call)
	n := len(actuals)
	if len(formals) < n {
		n = len(formals)
	}
	for i := 0; i < n; i++ {
		if actuals[i] == "" || actuals[i] == formals[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if actuals[j] == "" || actuals[i] == actuals[j] {
				continue
			}
			if actuals[i] == formals[j] && actuals[j] == formals[i] {
				return ArgSwap{
					Line:   call.Line,
					Callee: name,
					PosA:   i,
					PosB:   j,
					ArgA:   actuals[i],
					ArgB:   actuals[j],
				}, true
			}
		}
	}
	return ArgSwap{}, false
}

func formalNames(fn *ast.Node) []string {
	var out []string
	if params := findChild(fn, ast.Params); params != nil {
		for _, p := range params.Children {
			name, _ := paramNameType(p)
			out = append(out, name)
		}
	}
	return out
}

// actualNames extracts simple variable names from call arguments ("" for
// anything more complex, which the check skips).
func actualNames(call *ast.Node) []string {
	var out []string
	for _, arg := range call.Children[1:] {
		if arg.Kind == ast.NameLoad && len(arg.Children) == 1 {
			out = append(out, arg.Children[0].Value)
		} else {
			out = append(out, "")
		}
	}
	return out
}
