package pointsto

import (
	"testing"

	"namer/internal/ast"
)

// Kitchen-sink programs exercising every statement and expression shape
// the fact generator handles; the test asserts termination, origin
// counts, and a handful of precise origins.

const pythonKitchenSink = `import numpy as np
from collections import OrderedDict

class Base:
    def shared(self):
        return self.data

class Sink(Base):
    LIMIT = 100

    def __init__(self, name, size=10, *args, **kwargs):
        self.name = name
        self.size = size
        self.cache = OrderedDict()

    def churn(self, items):
        total = 0
        for i, item in enumerate(items):
            total += i
        while total > 0:
            total -= 1
        else:
            total = 0
        with open(self.name) as f, self.lock():
            data = f.read()
        try:
            parsed = np.array(data)
        except (ValueError, TypeError) as err:
            parsed = None
        except Exception:
            raise
        else:
            self.cache[self.name] = parsed
        finally:
            self.close()
        x = parsed if parsed is not None else self.default()
        y = [v * 2 for v in items if v]
        z = {k: v for k, v in self.cache.items()}
        w = (a for a in items)
        del z
        assert x is not None, 'missing'
        lam = lambda q: q + total
        first, *rest = items
        a = b = self.size
        global counter
        return lam(x)

def helper(flag):
    obj = Sink('s')
    if flag:
        out = obj
    elif not flag:
        out = Sink('t')
    else:
        out = None
    return out
`

func TestPythonKitchenSink(t *testing.T) {
	root := parsePy(t, pythonKitchenSink)
	res := AnalyzeFile(root, ast.Python)
	if res.OriginCount() == 0 {
		t.Fatal("no origins computed")
	}
	if res.Stats.Functions == 0 || res.Stats.Facts == 0 {
		t.Errorf("stats: %+v", res.Stats)
	}
	// np retains its numpy origin through the try block.
	if o, ok := originAt(res, root, "np", 1); !ok || o != "numpy" {
		t.Errorf("origin(np) = %q,%v", o, ok)
	}
	// err from the except clause carries no single origin (two types).
	if o, ok := originAt(res, root, "err", 0); ok && o == "" {
		t.Errorf("origin(err) = %q unexpected empty-but-present", o)
	}
	// obj in helper points to Sink.
	if o, ok := originAt(res, root, "obj", 0); !ok || o != "Sink" {
		t.Errorf("origin(obj) = %q,%v; want Sink", o, ok)
	}
}

const javaKitchenSink = `package p;
import java.util.List;

public class Sink extends Base implements Runnable {
    private int total;
    private String label;

    public Sink(String label) {
        this.label = label;
    }

    public void run() {
        int[] nums = {1, 2, 3};
        List<String> items = build();
        for (String s : items) {
            use(s);
        }
        do {
            total--;
        } while (total > 0);
        switch (total) {
        case 1:
            total = 2;
            break;
        default:
            total = 0;
        }
        Object o = (Object) items;
        boolean b = o instanceof List;
        int c = b ? 1 : 0;
        total += c;
        synchronized (this) {
            total++;
        }
        label: for (;;) { break label; }
        try (Reader r = open()) {
            r.read();
        } catch (IOException | RuntimeException e) {
            throw new IllegalStateException("bad", e);
        } finally {
            use(nums[0]);
        }
        Runnable fn = () -> use(total);
        Sink other = new Sink("x");
        other.run();
        assert total >= 0 : "neg";
    }
}
`

func TestJavaKitchenSink(t *testing.T) {
	root := parseJava(t, javaKitchenSink)
	res := AnalyzeFile(root, ast.Java)
	if res.OriginCount() == 0 {
		t.Fatal("no origins computed")
	}
	// other points to the in-file Sink instance.
	if o, ok := originAt(res, root, "other", 0); !ok || o != "Sink" {
		t.Errorf("origin(other) = %q,%v; want Sink", o, ok)
	}
	// this.label store decorates this with the generic Object origin.
	var thisIdent *ast.Node
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.AttributeStore {
			recv := n.Children[0]
			if recv.Kind == ast.NameLoad && recv.Children[0].Value == "this" && thisIdent == nil {
				thisIdent = recv.Children[0]
			}
		}
		return true
	})
	if thisIdent == nil {
		t.Fatal("this store not found")
	}
	if o, ok := res.OriginOf(thisIdent); !ok || o != "Object" {
		t.Errorf("origin(this in store) = %q,%v; want Object", o, ok)
	}
}

func TestStripHeapLabel(t *testing.T) {
	tests := map[string]string{
		"H:numpy":      "numpy",
		"H:a.b.c":      "c",
		"I:Widget":     "Widget",
		"C:Widget":     "Widget",
		"$none":        "",
		"plain":        "plain",
		"H:os.path":    "path",
		"I:pkg.Widget": "Widget",
	}
	for in, want := range tests {
		if got := stripHeapLabel(in); got != want {
			t.Errorf("stripHeapLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExprName(t *testing.T) {
	root := parsePy(t, "x = a.b.c\ny = fn()\n")
	var attr *ast.Node
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.AttributeLoad && attrName(n) == "c" {
			attr = n
		}
		return true
	})
	if attr == nil {
		t.Fatal("a.b.c not found")
	}
	if got := exprName(attr); got != "a.b.c" {
		t.Errorf("exprName = %q", got)
	}
	var call *ast.Node
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.Call {
			call = n
		}
		return true
	})
	if got := exprName(call); got != "" {
		t.Errorf("exprName(call) = %q, want empty", got)
	}
}
