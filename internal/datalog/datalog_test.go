package datalog

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTransitiveClosure(t *testing.T) {
	e := NewEngine()
	e.MustParse(`
		Path(X, Y) :- Edge(X, Y).
		Path(X, Z) :- Path(X, Y), Edge(Y, Z).
	`)
	e.Assert("Edge", "a", "b")
	e.Assert("Edge", "b", "c")
	e.Assert("Edge", "c", "d")
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("Path"); got != 6 {
		t.Errorf("Path count = %d, want 6", got)
	}
	if len(e.Query("Path", "a", "d")) != 1 {
		t.Error("Path(a,d) should hold")
	}
	if len(e.Query("Path", "d", "a")) != 0 {
		t.Error("Path(d,a) should not hold")
	}
	if got := len(e.Query("Path", "a", "_")); got != 3 {
		t.Errorf("Path(a,_) = %d, want 3", got)
	}
}

func TestCyclicGraphTerminates(t *testing.T) {
	e := NewEngine()
	e.MustParse(`
		Path(X, Y) :- Edge(X, Y).
		Path(X, Z) :- Path(X, Y), Edge(Y, Z).
	`)
	// A cycle: a -> b -> c -> a
	e.Assert("Edge", "a", "b")
	e.Assert("Edge", "b", "c")
	e.Assert("Edge", "c", "a")
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("Path"); got != 9 {
		t.Errorf("Path count = %d, want 9 (complete digraph over cycle)", got)
	}
}

func TestNegationStratified(t *testing.T) {
	e := NewEngine()
	e.MustParse(`
		Reachable(X) :- Start(X).
		Reachable(Y) :- Reachable(X), Edge(X, Y).
		Unreachable(X) :- Vertex(X), !Reachable(X).
	`)
	for _, v := range []string{"a", "b", "c", "d"} {
		e.Assert("Vertex", v)
	}
	e.Assert("Start", "a")
	e.Assert("Edge", "a", "b")
	e.Assert("Edge", "c", "d")
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("Unreachable"); got != 2 {
		t.Errorf("Unreachable = %d, want 2", got)
	}
	if len(e.Query("Unreachable", "c")) != 1 || len(e.Query("Unreachable", "d")) != 1 {
		t.Error("c and d should be unreachable")
	}
}

func TestUnstratifiableProgram(t *testing.T) {
	e := NewEngine()
	e.MustParse(`
		P(X) :- Q(X), !R(X).
		R(X) :- Q(X), !P(X).
	`)
	e.Assert("Q", "a")
	if err := e.Run(); err == nil {
		t.Error("negation through a cycle should be rejected")
	}
}

func TestFactsInProgramText(t *testing.T) {
	e := NewEngine()
	e.MustParse(`
		Edge(a, b).
		Edge(b, c).
		Path(X, Y) :- Edge(X, Y).
		Path(X, Z) :- Path(X, Y), Edge(Y, Z).
	`)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("Path"); got != 3 {
		t.Errorf("Path = %d, want 3", got)
	}
}

func TestQuotedConstantsAndComments(t *testing.T) {
	e := NewEngine()
	e.MustParse(`
		% seed facts
		Owns("alice", "file.txt").
		CanRead(U, F) :- Owns(U, F). % owners read
	`)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.Query("CanRead", "alice", "file.txt")) != 1 {
		t.Error("quoted constants not handled")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"P(X) :- ",            // empty body atom
		"P(X)",                // non-ground fact
		"P(X) :- Q(Y)",        // unsafe head variable
		"P(X) :- Q(X), !R(Y)", // unsafe negated variable
		"P :- Q(X)",           // malformed head atom
		"!P(a)",               // negated head
	}
	for _, prog := range bad {
		e := NewEngine()
		if err := e.Parse(prog); err == nil {
			t.Errorf("Parse(%q) should fail", prog)
		}
	}
}

func TestAnonymousVariables(t *testing.T) {
	e := NewEngine()
	e.MustParse(`
		HasChild(X) :- Parent(X, _).
	`)
	e.Assert("Parent", "a", "b")
	e.Assert("Parent", "a", "c")
	e.Assert("Parent", "b", "c")
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("HasChild"); got != 2 {
		t.Errorf("HasChild = %d, want 2", got)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	e := NewEngine()
	e.Assert("R", "a")
	e.Assert("R", "a", "b")
}

func TestPointsToShapedProgram(t *testing.T) {
	// A miniature Andersen-style analysis: alloc, move, store/load through
	// a single field.
	e := NewEngine()
	e.MustParse(`
		PointsTo(V, H) :- Alloc(V, H).
		PointsTo(A, H) :- Move(A, B), PointsTo(B, H).
		FieldPointsTo(H1, F, H2) :- Store(X, F, Y), PointsTo(X, H1), PointsTo(Y, H2).
		PointsTo(A, H2) :- Load(A, X, F), PointsTo(X, H1), FieldPointsTo(H1, F, H2).
	`)
	e.Assert("Alloc", "p", "h1")
	e.Assert("Alloc", "q", "h2")
	e.Assert("Move", "r", "p")
	e.Assert("Store", "r", "f", "q") // r.f = q
	e.Assert("Load", "s", "p", "f")  // s = p.f
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.Query("PointsTo", "s", "h2")) != 1 {
		t.Error("s should point to h2 through the field")
	}
	if len(e.Query("PointsTo", "r", "h1")) != 1 {
		t.Error("r should alias p")
	}
	if len(e.Query("PointsTo", "s", "h1")) != 0 {
		t.Error("s should not point to h1")
	}
}

func TestSymTab(t *testing.T) {
	st := NewSymTab()
	a := st.Intern("alpha")
	b := st.Intern("beta")
	if a == b {
		t.Error("distinct strings must get distinct symbols")
	}
	if st.Intern("alpha") != a {
		t.Error("interning is not idempotent")
	}
	if st.Name(a) != "alpha" {
		t.Error("Name round trip failed")
	}
	if _, ok := st.Lookup("gamma"); ok {
		t.Error("Lookup of unknown symbol should fail")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
}

// Property: reachability computed by Datalog matches a direct BFS on random
// small graphs.
func TestReachabilityMatchesBFS(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		const n = 8
		adj := make([][]int, n)
		e := NewEngine()
		e.MustParse(`
			Reach(X, Y) :- E(X, Y).
			Reach(X, Z) :- Reach(X, Y), E(Y, Z).
		`)
		for _, ed := range edges {
			u, v := int(ed[0]%n), int(ed[1]%n)
			adj[u] = append(adj[u], v)
			e.Assert("E", fmt.Sprint(u), fmt.Sprint(v))
		}
		if err := e.Run(); err != nil {
			return false
		}
		for s := 0; s < n; s++ {
			seen := make([]bool, n)
			stack := append([]int{}, adj[s]...)
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[v] {
					continue
				}
				seen[v] = true
				stack = append(stack, adj[v]...)
			}
			for v := 0; v < n; v++ {
				got := len(e.Query("Reach", fmt.Sprint(s), fmt.Sprint(v))) == 1
				if got != seen[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRelations(t *testing.T) {
	e := NewEngine()
	e.Assert("B", "x")
	e.Assert("A", "y")
	rels := e.Relations()
	if len(rels) != 2 || rels[0] != "A" || rels[1] != "B" {
		t.Errorf("Relations = %v", rels)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on a bad program")
		}
	}()
	NewEngine().MustParse("P(X) :- ")
}
