// Package datalog implements a small bottom-up Datalog engine with
// semi-naive evaluation, hash-join indices, and stratified negation. The
// paper implements its flow- and context-sensitive Andersen-style points-to
// analysis in Datalog (§4.1); package pointsto expresses its rules against
// this engine.
//
// Rule syntax (see Parse):
//
//	PointsTo(V, H) :- Alloc(V, H).
//	PointsTo(A, H) :- Assign(A, B), PointsTo(B, H).
//	External(F)   :- Callee(F), !DefinedHere(F).
//
// Identifiers starting with an uppercase letter or '_' inside an atom are
// variables; everything else (lowercase identifiers, quoted strings,
// numbers) is a constant. '_' alone is an anonymous variable.
package datalog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Engine holds relations, rules, and the symbol table.
type Engine struct {
	Syms  *SymTab
	rels  map[string]*relation
	rules []*rule
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{Syms: NewSymTab(), rels: make(map[string]*relation)}
}

type relation struct {
	name   string
	arity  int
	seen   map[string]struct{}
	tuples [][]int32
	// index[col][value] lists tuple positions with that value in col.
	index map[int]map[int32][]int
}

func (e *Engine) relation(name string, arity int) *relation {
	r, ok := e.rels[name]
	if !ok {
		r = &relation{name: name, arity: arity, seen: make(map[string]struct{}),
			index: make(map[int]map[int32][]int)}
		e.rels[name] = r
		return r
	}
	if r.arity != arity {
		panic(fmt.Sprintf("datalog: relation %s used with arity %d and %d", name, r.arity, arity))
	}
	return r
}

func encode(t []int32) string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// insert adds a tuple if new, returning true if it was added.
func (r *relation) insert(t []int32) bool {
	k := encode(t)
	if _, ok := r.seen[k]; ok {
		return false
	}
	r.seen[k] = struct{}{}
	pos := len(r.tuples)
	r.tuples = append(r.tuples, t)
	for col, idx := range r.index {
		idx[t[col]] = append(idx[t[col]], pos)
	}
	return true
}

// ensureIndex builds (once) an index on the given column.
func (r *relation) ensureIndex(col int) map[int32][]int {
	if idx, ok := r.index[col]; ok {
		return idx
	}
	idx := make(map[int32][]int)
	for pos, t := range r.tuples {
		idx[t[col]] = append(idx[t[col]], pos)
	}
	r.index[col] = idx
	return idx
}

// Assert adds a ground fact.
func (e *Engine) Assert(rel string, values ...string) {
	r := e.relation(rel, len(values))
	t := make([]int32, len(values))
	for i, v := range values {
		t[i] = e.Syms.Intern(v)
	}
	r.insert(t)
}

// Count returns the number of tuples in a relation (0 if absent).
func (e *Engine) Count(rel string) int {
	if r, ok := e.rels[rel]; ok {
		return len(r.tuples)
	}
	return 0
}

// Query returns all tuples of rel matching the given pattern, where "_"
// matches anything. The result tuples are decoded to strings.
func (e *Engine) Query(rel string, pattern ...string) [][]string {
	r, ok := e.rels[rel]
	if !ok {
		return nil
	}
	if len(pattern) != r.arity {
		panic(fmt.Sprintf("datalog: query %s arity mismatch", rel))
	}
	var out [][]string
	// Use an index on the first bound column if any.
	boundCol := -1
	var boundVal int32
	for i, pv := range pattern {
		if pv != "_" {
			sym, okSym := e.Syms.Lookup(pv)
			if !okSym {
				return nil
			}
			boundCol, boundVal = i, sym
			break
		}
	}
	check := func(t []int32) bool {
		for i, pv := range pattern {
			if pv == "_" {
				continue
			}
			sym, okSym := e.Syms.Lookup(pv)
			if !okSym || t[i] != sym {
				return false
			}
		}
		return true
	}
	decode := func(t []int32) []string {
		s := make([]string, len(t))
		for i, v := range t {
			s[i] = e.Syms.Name(v)
		}
		return s
	}
	if boundCol >= 0 {
		for _, pos := range r.ensureIndex(boundCol)[boundVal] {
			if t := r.tuples[pos]; check(t) {
				out = append(out, decode(t))
			}
		}
		return out
	}
	for _, t := range r.tuples {
		if check(t) {
			out = append(out, decode(t))
		}
	}
	return out
}

// term is a constant symbol or a variable slot.
type term struct {
	isVar bool
	sym   int32 // constant symbol when !isVar
	slot  int   // variable slot when isVar; -1 for anonymous
}

type atom struct {
	rel     string
	arity   int
	terms   []term
	negated bool
}

type rule struct {
	head    atom
	body    []atom
	numVars int
	text    string
}

// Parse parses a newline- or period-separated list of rules and adds them
// to the engine. Facts (rules without ':-') are asserted directly.
func (e *Engine) Parse(program string) error {
	clauses := splitClauses(program)
	for _, cl := range clauses {
		if err := e.parseClause(cl); err != nil {
			return fmt.Errorf("datalog: %w in clause %q", err, cl)
		}
	}
	return nil
}

// MustParse is Parse but panics on error; intended for static rule sets.
func (e *Engine) MustParse(program string) {
	if err := e.Parse(program); err != nil {
		panic(err)
	}
}

func splitClauses(program string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for _, r := range program {
		switch {
		case r == '"':
			inStr = !inStr
			cur.WriteRune(r)
		case r == '.' && !inStr:
			s := strings.TrimSpace(cur.String())
			if s != "" {
				out = append(out, s)
			}
			cur.Reset()
		case r == '%' && !inStr:
			// comment to end of line: mark by writing nothing until newline
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	// Strip comment lines.
	var clean []string
	for _, c := range out {
		var lines []string
		for _, l := range strings.Split(c, "\n") {
			if i := strings.Index(l, "%"); i >= 0 {
				l = l[:i]
			}
			lines = append(lines, l)
		}
		c = strings.TrimSpace(strings.Join(lines, "\n"))
		if c != "" {
			clean = append(clean, c)
		}
	}
	return clean
}

func (e *Engine) parseClause(cl string) error {
	headText, bodyText, hasBody := strings.Cut(cl, ":-")
	vars := map[string]int{}
	head, err := e.parseAtom(strings.TrimSpace(headText), vars)
	if err != nil {
		return err
	}
	if head.negated {
		return fmt.Errorf("negated head")
	}
	if !hasBody {
		// Ground fact.
		t := make([]int32, len(head.terms))
		for i, tm := range head.terms {
			if tm.isVar {
				return fmt.Errorf("non-ground fact")
			}
			t[i] = tm.sym
		}
		e.relation(head.rel, head.arity).insert(t)
		return nil
	}
	var body []atom
	for _, part := range splitAtoms(bodyText) {
		a, err := e.parseAtom(strings.TrimSpace(part), vars)
		if err != nil {
			return err
		}
		body = append(body, a)
	}
	// Safety: every head variable and every negated-atom variable must be
	// bound by a positive body atom.
	bound := map[int]bool{}
	for _, a := range body {
		if a.negated {
			continue
		}
		for _, tm := range a.terms {
			if tm.isVar && tm.slot >= 0 {
				bound[tm.slot] = true
			}
		}
	}
	for _, tm := range head.terms {
		if tm.isVar && tm.slot >= 0 && !bound[tm.slot] {
			return fmt.Errorf("unsafe head variable")
		}
	}
	for _, a := range body {
		if !a.negated {
			continue
		}
		for _, tm := range a.terms {
			if tm.isVar && tm.slot >= 0 && !bound[tm.slot] {
				return fmt.Errorf("unsafe variable in negated atom")
			}
		}
	}
	// Ensure relations exist.
	e.relation(head.rel, head.arity)
	for _, a := range body {
		e.relation(a.rel, a.arity)
	}
	e.rules = append(e.rules, &rule{head: head, body: body, numVars: len(vars), text: cl})
	return nil
}

// splitAtoms splits a rule body on commas at paren depth zero.
func splitAtoms(s string) []string {
	var out []string
	depth := 0
	start := 0
	inStr := false
	for i, r := range s {
		switch {
		case r == '"':
			inStr = !inStr
		case inStr:
		case r == '(':
			depth++
		case r == ')':
			depth--
		case r == ',' && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

func (e *Engine) parseAtom(s string, vars map[string]int) (atom, error) {
	var a atom
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "!") {
		a.negated = true
		s = strings.TrimSpace(s[1:])
	}
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return a, fmt.Errorf("malformed atom %q", s)
	}
	a.rel = strings.TrimSpace(s[:open])
	if a.rel == "" {
		return a, fmt.Errorf("atom missing relation name")
	}
	args := splitAtoms(s[open+1 : len(s)-1])
	for _, arg := range args {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			return a, fmt.Errorf("empty argument")
		}
		switch {
		case arg == "_":
			a.terms = append(a.terms, term{isVar: true, slot: -1})
		case arg[0] >= 'A' && arg[0] <= 'Z' || arg[0] == '_':
			slot, ok := vars[arg]
			if !ok {
				slot = len(vars)
				vars[arg] = slot
			}
			a.terms = append(a.terms, term{isVar: true, slot: slot})
		case arg[0] == '"':
			if len(arg) < 2 || !strings.HasSuffix(arg, "\"") {
				return a, fmt.Errorf("malformed string %q", arg)
			}
			a.terms = append(a.terms, term{sym: e.Syms.Intern(arg[1 : len(arg)-1])})
		default:
			a.terms = append(a.terms, term{sym: e.Syms.Intern(arg)})
		}
	}
	a.arity = len(a.terms)
	return a, nil
}

// Run evaluates all rules to fixpoint using stratified semi-naive
// evaluation. It returns an error if the program cannot be stratified
// (negation through a cycle).
func (e *Engine) Run() error {
	strata, err := e.stratify()
	if err != nil {
		return err
	}
	for _, stratum := range strata {
		e.runStratum(stratum)
	}
	return nil
}

// stratify groups rules into strata such that negated dependencies always
// point to earlier strata.
func (e *Engine) stratify() ([][]*rule, error) {
	// Compute a stratum number per relation: rel depends on body rels;
	// through negation the dependency is strict (+1).
	strat := map[string]int{}
	for name := range e.rels {
		strat[name] = 0
	}
	n := len(e.rels)
	for iter := 0; ; iter++ {
		changed := false
		for _, r := range e.rules {
			h := strat[r.head.rel]
			for _, a := range r.body {
				need := strat[a.rel]
				if a.negated {
					need++
				}
				if need > h {
					h = need
					changed = true
				}
			}
			strat[r.head.rel] = h
		}
		if !changed {
			break
		}
		if iter > n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable")
		}
	}
	maxS := 0
	for _, s := range strat {
		if s > maxS {
			maxS = s
		}
	}
	strata := make([][]*rule, maxS+1)
	for _, r := range e.rules {
		s := strat[r.head.rel]
		strata[s] = append(strata[s], r)
	}
	return strata, nil
}

// runStratum evaluates one stratum's rules to fixpoint with semi-naive
// iteration: each round only considers joins that touch at least one tuple
// derived in the previous round.
func (e *Engine) runStratum(rules []*rule) {
	derived := map[string]bool{}
	for _, r := range rules {
		derived[r.head.rel] = true
	}
	// delta = tuples added in the previous round, per relation.
	delta := map[string][][]int32{}
	// Round 0: all existing tuples count as delta (facts may have been
	// asserted before Run).
	for name := range derived {
		rel := e.rels[name]
		delta[name] = append([][]int32{}, rel.tuples...)
	}
	first := true
	for {
		next := map[string][][]int32{}
		for _, r := range rules {
			// Choose which body atom uses the delta. On the first round
			// also run with no delta restriction so rules over pure EDB
			// relations fire.
			usedDelta := false
			for i, a := range r.body {
				if a.negated || !derived[a.rel] {
					continue
				}
				usedDelta = true
				e.evalRule(r, i, delta[a.rel], next)
			}
			if !usedDelta && first {
				e.evalRule(r, -1, nil, next)
			}
		}
		first = false
		empty := true
		for _, ts := range next {
			if len(ts) > 0 {
				empty = false
			}
		}
		if empty {
			return
		}
		delta = next
	}
}

// evalRule joins the rule body, using deltaTuples for body atom deltaPos
// (or full relations everywhere when deltaPos < 0), and inserts derived
// head tuples. Newly inserted tuples are appended to next[headRel].
func (e *Engine) evalRule(r *rule, deltaPos int, deltaTuples [][]int32, next map[string][][]int32) {
	binding := make([]int32, r.numVars)
	boundVar := make([]bool, r.numVars)
	headRel := e.rels[r.head.rel]

	// Order body atoms: delta atom first for selectivity, negated last.
	order := make([]int, 0, len(r.body))
	if deltaPos >= 0 {
		order = append(order, deltaPos)
	}
	for i, a := range r.body {
		if i == deltaPos || a.negated {
			continue
		}
		order = append(order, i)
	}
	for i, a := range r.body {
		if a.negated {
			order = append(order, i)
		}
	}

	var rec func(k int)
	rec = func(k int) {
		if k == len(order) {
			t := make([]int32, len(r.head.terms))
			for i, tm := range r.head.terms {
				if tm.isVar {
					t[i] = binding[tm.slot]
				} else {
					t[i] = tm.sym
				}
			}
			if headRel.insert(t) {
				next[r.head.rel] = append(next[r.head.rel], t)
			}
			return
		}
		ai := order[k]
		a := r.body[ai]
		rel := e.rels[a.rel]

		if a.negated {
			// All variables are bound (safety); check absence.
			t := make([]int32, len(a.terms))
			ground := true
			for i, tm := range a.terms {
				switch {
				case !tm.isVar:
					t[i] = tm.sym
				case tm.slot >= 0 && boundVar[tm.slot]:
					t[i] = binding[tm.slot]
				default:
					ground = false
				}
			}
			if ground {
				if _, ok := rel.seen[encode(t)]; ok {
					return // negated atom holds a match: fail
				}
				rec(k + 1)
				return
			}
			// Anonymous variable in negated atom: fail only if any tuple
			// matches the bound positions.
			for _, tu := range rel.tuples {
				match := true
				for i, tm := range a.terms {
					if !tm.isVar && tu[i] != tm.sym {
						match = false
						break
					}
					if tm.isVar && tm.slot >= 0 && boundVar[tm.slot] && tu[i] != binding[tm.slot] {
						match = false
						break
					}
				}
				if match {
					return
				}
			}
			rec(k + 1)
			return
		}

		var candidates [][]int32
		if ai == deltaPos {
			candidates = deltaTuples
		} else {
			// Use an index on the first bound column.
			col := -1
			var val int32
			for i, tm := range a.terms {
				if !tm.isVar {
					col, val = i, tm.sym
					break
				}
				if tm.slot >= 0 && boundVar[tm.slot] {
					col, val = i, binding[tm.slot]
					break
				}
			}
			if col >= 0 {
				idx := rel.ensureIndex(col)
				for _, pos := range idx[val] {
					candidates = append(candidates, rel.tuples[pos])
				}
			} else {
				candidates = rel.tuples
			}
		}
	cand:
		for _, tu := range candidates {
			var newlyBound []int
			for i, tm := range a.terms {
				switch {
				case !tm.isVar:
					if tu[i] != tm.sym {
						for _, s := range newlyBound {
							boundVar[s] = false
						}
						continue cand
					}
				case tm.slot < 0:
					// anonymous
				case boundVar[tm.slot]:
					if tu[i] != binding[tm.slot] {
						for _, s := range newlyBound {
							boundVar[s] = false
						}
						continue cand
					}
				default:
					binding[tm.slot] = tu[i]
					boundVar[tm.slot] = true
					newlyBound = append(newlyBound, tm.slot)
				}
			}
			rec(k + 1)
			for _, s := range newlyBound {
				boundVar[s] = false
			}
		}
	}
	rec(0)
}

// Relations returns the names of all relations, sorted.
func (e *Engine) Relations() []string {
	names := make([]string, 0, len(e.rels))
	for n := range e.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
