package datalog

// SymTab interns strings as dense int32 symbols so tuples can be stored and
// joined as integer vectors.
type SymTab struct {
	byName map[string]int32
	names  []string
}

// NewSymTab returns an empty symbol table.
func NewSymTab() *SymTab {
	return &SymTab{byName: make(map[string]int32)}
}

// Intern returns the symbol for s, allocating one if needed.
func (t *SymTab) Intern(s string) int32 {
	if id, ok := t.byName[s]; ok {
		return id
	}
	id := int32(len(t.names))
	t.byName[s] = id
	t.names = append(t.names, s)
	return id
}

// Lookup returns the symbol for s and whether it exists.
func (t *SymTab) Lookup(s string) (int32, bool) {
	id, ok := t.byName[s]
	return id, ok
}

// Name returns the string for a symbol.
func (t *SymTab) Name(id int32) string {
	if id < 0 || int(id) >= len(t.names) {
		return "?"
	}
	return t.names[id]
}

// Len returns the number of interned symbols.
func (t *SymTab) Len() int { return len(t.names) }
