// Package buildinfo reports what binary is running: the module
// version and VCS stamp baked in by the Go toolchain
// (runtime/debug.ReadBuildInfo), rendered for -version flags and
// exported as a constant namer_build_info gauge on /metrics, so
// dashboards can tell which build produced which latency curve.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"

	"namer/internal/obs"
)

// Version returns the best available version string: the main module
// version when it is a real tag, otherwise the VCS revision (short)
// with a "+dirty" suffix for modified trees, or "devel" when no build
// info is stamped (e.g. some test binaries).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		// Pseudo-versions (vX.Y.Z-<timestamp>-<rev>[+dirty]) already
		// embed the VCS stamp; appending it again would double it.
		if !strings.Contains(version, rev) {
			return version + "-" + rev + modified
		}
	}
	return version
}

// String renders the full one-line identity for -version output:
// "<version> <go version> <GOOS>/<GOARCH>".
func String() string {
	return fmt.Sprintf("%s %s %s/%s", Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Register exports the constant build-info gauge on a metrics
// registry, the Prometheus idiom for joining version labels onto other
// series:
//
//	namer_build_info{version="...",go="go1.24.0"} 1
func Register(r *obs.Registry) {
	r.Gauge(fmt.Sprintf("namer_build_info{version=%q,go=%q}",
		Version(), runtime.Version())).Set(1)
}
