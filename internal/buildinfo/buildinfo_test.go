package buildinfo

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"namer/internal/obs"
)

func TestVersionAndString(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("Version() is empty")
	}
	s := String()
	if !strings.HasPrefix(s, v) {
		t.Errorf("String() = %q does not start with Version() = %q", s, v)
	}
	for _, want := range []string{runtime.Version(), runtime.GOOS + "/" + runtime.GOARCH} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestRegister(t *testing.T) {
	r := obs.NewRegistry()
	Register(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "namer_build_info{") {
		t.Fatalf("scrape missing namer_build_info:\n%s", out)
	}
	if !strings.Contains(out, "version=") || !strings.Contains(out, "go=") {
		t.Errorf("namer_build_info missing labels:\n%s", out)
	}
	if !strings.Contains(out, "} 1") {
		t.Errorf("namer_build_info gauge not constant 1:\n%s", out)
	}
}
