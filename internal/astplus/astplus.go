// Package astplus implements the AST transformation of §3.1: starting from
// a parsed statement AST it (1) abstracts literals to NUM/STR/BOOL tokens,
// (2) inserts NumArgs(k) nodes above calls and function definitions, (3)
// splits identifier terminals into subtokens under NumST(k) nodes, and (4)
// inserts origin nodes computed by the points-to and dataflow analyses
// (package pointsto) as parents of the affected subtokens. The result is
// the transformed AST (AST+) of Fig. 2(c), from which name paths are
// extracted.
package astplus

import (
	"fmt"

	"namer/internal/ast"
	"namer/internal/subtoken"
)

// OriginFunc reports the origin label for a terminal node of the original
// file AST, as computed by the points-to analysis. A nil OriginFunc
// disables rule 4 (the "w/o A" ablation of Tables 2 and 5).
type OriginFunc func(orig *ast.Node) (string, bool)

// Transform produces the AST+ for a projected statement. The input
// statement is not mutated. When origin is non-nil, it is consulted
// through stmt.OrigNodes for every identifier terminal.
func Transform(stmt *ast.Statement, origin OriginFunc) *ast.Node {
	root := stmt.Root
	// The paper draws statement trees rooted at the expression: an
	// ExprStmt wrapper with a single child is elided (Fig. 2(b) roots the
	// tree at Call).
	if root.Kind == ast.ExprStmt && len(root.Children) == 1 {
		root = root.Children[0]
	}
	t := &transformer{stmt: stmt, origin: origin}
	return t.node(root)
}

type transformer struct {
	stmt   *ast.Statement
	origin OriginFunc
}

func (t *transformer) originOf(clone *ast.Node) (string, bool) {
	if t.origin == nil {
		return "", false
	}
	orig, ok := t.stmt.OrigNodes[clone]
	if !ok {
		// The caller may pass a statement whose Root nodes are original
		// nodes themselves.
		orig = clone
	}
	return t.origin(orig)
}

func (t *transformer) node(n *ast.Node) *ast.Node {
	if n.IsTerminal() {
		return t.terminal(n)
	}
	out := &ast.Node{Kind: n.Kind, Value: n.Value, Line: n.Line}
	for _, c := range n.Children {
		out.Children = append(out.Children, t.node(c))
	}
	// Rule 2: NumArgs(k) above calls and function definitions.
	switch n.Kind {
	case ast.Call:
		k := len(n.Children) - 1
		if k < 0 {
			k = 0
		}
		return wrapNumArgs(out, k)
	case ast.New:
		k := 0
		for _, c := range n.Children[1:] {
			if c.Kind != ast.Body {
				k++
			}
		}
		return wrapNumArgs(out, k)
	case ast.FunctionDef, ast.CtorDef, ast.Lambda:
		k := 0
		if params := findParams(n); params != nil {
			k = len(params.Children)
		}
		return wrapNumArgs(out, k)
	}
	return out
}

func wrapNumArgs(n *ast.Node, k int) *ast.Node {
	w := &ast.Node{Kind: ast.NumArgs, Value: fmt.Sprintf("NumArgs(%d)", k), Line: n.Line}
	w.Children = []*ast.Node{n}
	return w
}

func findParams(n *ast.Node) *ast.Node {
	for _, c := range n.Children {
		if c.Kind == ast.Params {
			return c
		}
	}
	return nil
}

func (t *transformer) terminal(n *ast.Node) *ast.Node {
	switch n.Kind {
	case ast.NumLit:
		return wrapNumST([]string{"NUM"}, "", n.Line)
	case ast.StrLit:
		return wrapNumST([]string{"STR"}, "", n.Line)
	case ast.BoolLit:
		return wrapNumST([]string{"BOOL"}, "", n.Line)
	case ast.NullLit:
		return wrapNumST([]string{"NULL"}, "", n.Line)
	case ast.Ident:
		subs := subtoken.Split(n.Value)
		if len(subs) == 0 {
			subs = []string{n.Value}
		}
		orig, _ := t.originOf(n)
		return wrapNumST(subs, orig, n.Line)
	default:
		// Operators and other token leaves stay as-is.
		return &ast.Node{Kind: n.Kind, Value: n.Value, Line: n.Line}
	}
}

// wrapNumST builds NumST(k) -> [origin ->] subtoken leaves.
func wrapNumST(subs []string, origin string, line int) *ast.Node {
	w := &ast.Node{Kind: ast.NumST, Value: fmt.Sprintf("NumST(%d)", len(subs)), Line: line}
	for _, s := range subs {
		leaf := &ast.Node{Kind: ast.Subtoken, Value: s, Line: line}
		if origin != "" {
			o := &ast.Node{Kind: ast.Origin, Value: origin, Line: line,
				Children: []*ast.Node{leaf}}
			w.Children = append(w.Children, o)
		} else {
			w.Children = append(w.Children, leaf)
		}
	}
	return w
}
