package astplus

import (
	"strings"
	"testing"

	"namer/internal/ast"
	"namer/internal/namepath"
	"namer/internal/pointsto"
	"namer/internal/pylang"
)

const figure2Src = `class TestPicture(TestCase):
    def test_angle_picture(self):
        rotated_picture_name = "IMG_2259.jpg"
        for picture in self.slide.pictures:
            if picture.relative_path == rotated_picture_name:
                picture = self.slide.pictures[0]
                self.assertTrue(picture.rotate_angle, 90)
                break
`

// transformFigure2 runs the full front half of the pipeline on the paper's
// overview example and returns the AST+ of the assertTrue statement.
func transformFigure2(t *testing.T, withOrigins bool) *ast.Node {
	t.Helper()
	root, err := pylang.Parse(figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	var origin OriginFunc
	if withOrigins {
		res := pointsto.AnalyzeFile(root, ast.Python)
		origin = res.OriginOf
	}
	for _, stmt := range ast.Statements(root) {
		found := false
		stmt.Root.Walk(func(n *ast.Node) bool {
			if n.Kind == ast.Ident && n.Value == "assertTrue" {
				found = true
			}
			return true
		})
		if found {
			return Transform(stmt, origin)
		}
	}
	t.Fatal("assertTrue statement not found")
	return nil
}

func TestFigure2NamePaths(t *testing.T) {
	plus := transformFigure2(t, true)
	paths := namepath.Extract(plus, 0)
	var got []string
	for _, p := range paths {
		got = append(got, p.String())
	}
	// The exact paths of Fig. 2(d).
	want := []string{
		"NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self",
		"NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert",
		"NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True",
		"NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM",
	}
	for _, w := range want {
		foundIt := false
		for _, g := range got {
			if g == w {
				foundIt = true
				break
			}
		}
		if !foundIt {
			t.Errorf("missing name path:\n  want %q\n  got  %v", w, got)
		}
	}
}

func TestFigure2WithoutAnalysis(t *testing.T) {
	plus := transformFigure2(t, false)
	paths := namepath.Extract(plus, 0)
	for _, p := range paths {
		if strings.Contains(p.String(), "TestCase") {
			t.Errorf("w/o analysis there must be no origin nodes: %s", p)
		}
	}
	// Structure without origins.
	want := "NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 self"
	found := false
	for _, p := range paths {
		if p.String() == want {
			found = true
		}
	}
	if !found {
		t.Errorf("missing undedecorated path %q", want)
	}
}

func TestLiteralAbstraction(t *testing.T) {
	src := "x = 'hello'\ny = True\nz = None\nw = 3.14\n"
	root, err := pylang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := ast.Statements(root)
	var all []string
	for _, s := range stmts {
		plus := Transform(s, nil)
		for _, p := range namepath.Extract(plus, 0) {
			all = append(all, p.String())
		}
	}
	joined := strings.Join(all, "\n")
	for _, tok := range []string{"STR", "BOOL", "NULL", "NUM"} {
		if !strings.Contains(joined, tok) {
			t.Errorf("literal token %s missing in:\n%s", tok, joined)
		}
	}
	if strings.Contains(joined, "hello") || strings.Contains(joined, "3.14") {
		t.Error("raw literal values leaked into AST+")
	}
}

func TestNumArgsOnFunctionDef(t *testing.T) {
	src := "def evolve(self, a, b, **kwargs):\n    pass\n"
	root, err := pylang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmt := ast.Statements(root)[0]
	plus := Transform(stmt, nil)
	if plus.Kind != ast.NumArgs || plus.Value != "NumArgs(4)" {
		t.Errorf("FunctionDef wrapper = %q, want NumArgs(4)", plus.Value)
	}
}

func TestNumArgsVariadicCalls(t *testing.T) {
	for _, tt := range []struct {
		src  string
		want string
	}{
		{"f()\n", "NumArgs(0)"},
		{"f(a)\n", "NumArgs(1)"},
		{"f(a, b, c)\n", "NumArgs(3)"},
		{"f(a, b=1)\n", "NumArgs(2)"},
		{"f(*args, **kwargs)\n", "NumArgs(2)"},
	} {
		root, err := pylang.Parse(tt.src)
		if err != nil {
			t.Fatal(err)
		}
		stmt := ast.Statements(root)[0]
		plus := Transform(stmt, nil)
		if plus.Value != tt.want {
			t.Errorf("%q: wrapper = %q, want %q", tt.src, plus.Value, tt.want)
		}
	}
}

func TestSubtokenSplitting(t *testing.T) {
	src := "rotated_picture_name = value\n"
	root, err := pylang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmt := ast.Statements(root)[0]
	plus := Transform(stmt, nil)
	var numST *ast.Node
	plus.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.NumST && n.Value == "NumST(3)" {
			numST = n
		}
		return true
	})
	if numST == nil {
		t.Fatal("NumST(3) for rotated_picture_name not found")
	}
	if len(numST.Children) != 3 || numST.Children[0].Value != "rotated" ||
		numST.Children[2].Value != "name" {
		t.Errorf("subtokens: %s", numST)
	}
}

func TestTransformDoesNotMutateInput(t *testing.T) {
	root, err := pylang.Parse("self.assertTrue(x, 1)\n")
	if err != nil {
		t.Fatal(err)
	}
	stmt := ast.Statements(root)[0]
	before := stmt.Root.Fingerprint()
	Transform(stmt, nil)
	if stmt.Root.Fingerprint() != before {
		t.Error("Transform mutated the statement AST")
	}
}
