package astplus

import (
	"strings"
	"testing"

	"namer/internal/ast"
	"namer/internal/javalang"
	"namer/internal/namepath"
	"namer/internal/pointsto"
)

func transformJavaStmt(t *testing.T, src string, match string) *ast.Node {
	t.Helper()
	root, err := javalang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := pointsto.AnalyzeFile(root, ast.Java)
	for _, stmt := range ast.Statements(root) {
		found := false
		stmt.Root.Walk(func(n *ast.Node) bool {
			if n.Kind == ast.Ident && n.Value == match {
				found = true
			}
			return true
		})
		if found {
			return Transform(stmt, res.OriginOf)
		}
	}
	t.Fatalf("statement containing %q not found", match)
	return nil
}

func TestJavaCallTransform(t *testing.T) {
	src := `class T {
    void m(ProgressDialog progressDialog) {
        progressDialog.dismiss();
    }
}`
	plus := transformJavaStmt(t, src, "dismiss")
	paths := namepath.Extract(plus, 0)
	var all []string
	for _, p := range paths {
		all = append(all, p.String())
	}
	joined := strings.Join(all, "\n")
	// The receiver splits into two subtokens, each under the
	// ProgressDialog origin from its declared parameter type.
	for _, want := range []string{
		"NumArgs(0) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(2) 0 ProgressDialog 0 progress",
		"NumArgs(0) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(2) 1 ProgressDialog 0 Dialog",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing path %q in:\n%s", want, joined)
		}
	}
}

func TestJavaNewTransform(t *testing.T) {
	src := `class T {
    void m() {
        StringWriter w = new StringWriter();
    }
}`
	plus := transformJavaStmt(t, src, "StringWriter")
	var sawNumArgs bool
	plus.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.NumArgs && n.Value == "NumArgs(0)" {
			sawNumArgs = true
		}
		return true
	})
	if !sawNumArgs {
		t.Error("New should be wrapped in NumArgs(0)")
	}
}

func TestJavaMethodDefTransform(t *testing.T) {
	src := `class T {
    void handle(Context context, Intent intent) {
        use(context);
    }
}`
	plus := transformJavaStmt(t, src, "handle")
	if plus.Kind != ast.NumArgs || plus.Value != "NumArgs(2)" {
		t.Errorf("method def wrapper = %q, want NumArgs(2)", plus.Value)
	}
}

func TestJavaLiteralAbstraction(t *testing.T) {
	src := `class T {
    void m() {
        x = compute(3.14, "text", true, null);
    }
}`
	plus := transformJavaStmt(t, src, "compute")
	paths := namepath.Extract(plus, 0)
	var ends []string
	for _, p := range paths {
		ends = append(ends, p.End)
	}
	joined := strings.Join(ends, " ")
	for _, want := range []string{"NUM", "STR", "BOOL", "NULL"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing abstracted literal %s in ends: %v", want, ends)
		}
	}
}
