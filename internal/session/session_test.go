package session

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"namer/internal/core"
)

type fakeCounter struct{ n atomic.Int64 }

func (f *fakeCounter) Inc() { f.n.Add(1) }

type fakeGauge struct{ v atomic.Int64 }

func (f *fakeGauge) Set(v int64) { f.v.Store(v) }

func TestOpenGetClose(t *testing.T) {
	m := NewManager(Config{})
	s, err := m.Open()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.ID(), "s-") || len(s.ID()) != 26 {
		t.Fatalf("unexpected session id %q", s.ID())
	}
	got, ok := m.Get(s.ID())
	if !ok || got != s {
		t.Fatal("Get did not return the opened session")
	}
	if _, ok := m.Get("s-does-not-exist"); ok {
		t.Fatal("unknown id resolved")
	}
	if !m.Close(s.ID()) {
		t.Fatal("Close reported unknown id")
	}
	if m.Close(s.ID()) {
		t.Fatal("double close succeeded")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after close", m.Len())
	}
}

func TestCapacity(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	a, _ := m.Open()
	if _, err := m.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("third open: %v, want ErrTooManySessions", err)
	}
	m.Close(a.ID())
	if _, err := m.Open(); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

func TestIdleEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	count := &fakeGauge{}
	evict := &fakeCounter{}
	m := NewManager(Config{IdleTTL: time.Minute, Now: clock,
		Metrics: Metrics{Count: count, IdleEvictions: evict}})
	a, _ := m.Open()
	b, _ := m.Open()
	if count.v.Load() != 2 {
		t.Fatalf("count gauge = %d, want 2", count.v.Load())
	}

	// Keep a active, let b idle past the TTL.
	now = now.Add(40 * time.Second)
	m.Get(a.ID())
	now = now.Add(30 * time.Second) // b idle 70s > TTL; a idle 30s
	if n := m.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if _, ok := m.Get(b.ID()); ok {
		t.Fatal("idle session survived the sweep")
	}
	if _, ok := m.Get(a.ID()); !ok {
		t.Fatal("active session evicted")
	}
	if evict.n.Load() != 1 || count.v.Load() != 1 {
		t.Fatalf("metrics: evictions=%d count=%d, want 1/1", evict.n.Load(), count.v.Load())
	}
}

// TestSweepRateLimited: the opportunistic sweep in Open/Get runs at most
// once per quarter TTL, so a busy manager is not scanning its whole
// table on every request.
func TestSweepRateLimited(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewManager(Config{IdleTTL: time.Minute, Now: func() time.Time { return now }})
	idle, _ := m.Open()
	_ = idle
	now = now.Add(2 * time.Minute) // idle is far past the TTL

	// The first Get sweeps (and evicts idle); reopen one and make it
	// eligible again within the rate-limit window: no second sweep runs.
	m.Get("s-anything")
	if m.Len() != 0 {
		t.Fatalf("first opportunistic sweep did not run: %d sessions", m.Len())
	}
	again, _ := m.Open()
	again.lastActive.Store(now.Add(-2 * time.Minute).UnixNano())
	now = now.Add(10 * time.Second) // < TTL/4 since last sweep
	m.Get("s-whatever")
	if m.Len() != 1 {
		t.Fatal("sweep ran again inside the rate-limit window")
	}
	now = now.Add(10 * time.Second) // past TTL/4 now
	m.Get("s-whatever")
	if m.Len() != 0 {
		t.Fatal("sweep did not resume after the rate-limit window")
	}
}

func TestIdleEvictionDisabled(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewManager(Config{IdleTTL: -1, Now: func() time.Time { return now }})
	m.Open()
	now = now.Add(24 * time.Hour)
	if n := m.Sweep(); n != 0 {
		t.Fatalf("disabled sweep evicted %d sessions", n)
	}
	if m.Len() != 1 {
		t.Fatal("session gone despite disabled eviction")
	}
}

func openFile(t *testing.T, s *Session, path, content string) {
	t.Helper()
	if err := s.Update(path, 1, []Edit{{Text: content}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateFullAndRangeEdits(t *testing.T) {
	m := NewManager(Config{})
	s, _ := m.Open()
	openFile(t, s, "f.py", "a = 1\nb = 2\nc = 3\n")

	var got *Change
	err := s.Update("f.py", 2, []Edit{{
		Range: &Range{Start: Pos{Line: 1, Character: 4}, End: Pos{Line: 1, Character: 5}},
		Text:  "20",
	}}, func(ch *Change) any { got = ch; return "state-2" })
	if err != nil {
		t.Fatal(err)
	}
	if got.After != "a = 1\nb = 20\nc = 3\n" {
		t.Fatalf("After = %q", got.After)
	}
	if got.Before != "a = 1\nb = 2\nc = 3\n" {
		t.Fatalf("Before = %q", got.Before)
	}
	if got.Hint == nil || *got.Hint != (core.EditHint{StartLine: 2, EndLine: 2}) {
		t.Fatalf("Hint = %+v", got.Hint)
	}
	if got.Prev != nil {
		t.Fatalf("Prev = %v on second change (first stored nil)", got.Prev)
	}

	// Multi-line range replacement spanning lines 1-2.
	err = s.Update("f.py", 3, []Edit{{
		Range: &Range{Start: Pos{Line: 0, Character: 0}, End: Pos{Line: 1, Character: 6}},
		Text:  "x = 9",
	}}, func(ch *Change) any { got = ch; return "state-3" })
	if err != nil {
		t.Fatal(err)
	}
	if got.After != "x = 9\nc = 3\n" {
		t.Fatalf("After = %q", got.After)
	}
	if got.Hint == nil || *got.Hint != (core.EditHint{StartLine: 1, EndLine: 2, LineDelta: -1}) {
		t.Fatalf("Hint = %+v", got.Hint)
	}
	if got.Prev != "state-2" {
		t.Fatalf("Prev = %v, want state-2", got.Prev)
	}

	content, version, ok := s.Snapshot("f.py")
	if !ok || version != 3 || content != "x = 9\nc = 3\n" {
		t.Fatalf("Snapshot = %q v%d %v", content, version, ok)
	}
}

func TestUpdateFullReplaceClearsHint(t *testing.T) {
	m := NewManager(Config{})
	s, _ := m.Open()
	openFile(t, s, "f.py", "a = 1\n")
	var got *Change
	err := s.Update("f.py", 2, []Edit{
		{Range: &Range{Start: Pos{Line: 0, Character: 0}, End: Pos{Line: 0, Character: 1}}, Text: "b"},
		{Text: "whole = new()\n"}, // full replace mid-batch
	}, func(ch *Change) any { got = ch; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.Hint != nil {
		t.Fatalf("full-content batch still carries hint %+v", got.Hint)
	}
	if got.After != "whole = new()\n" {
		t.Fatalf("After = %q", got.After)
	}
}

func TestUpdateMultiEditHintMerges(t *testing.T) {
	m := NewManager(Config{})
	s, _ := m.Open()
	openFile(t, s, "f.py", "a = 1\nb = 2\nc = 3\nd = 4\n")
	var got *Change
	err := s.Update("f.py", 2, []Edit{
		{Range: &Range{Start: Pos{Line: 0, Character: 4}, End: Pos{Line: 0, Character: 5}}, Text: "10"},
		{Range: &Range{Start: Pos{Line: 3, Character: 4}, End: Pos{Line: 3, Character: 5}}, Text: "40"},
	}, func(ch *Change) any { got = ch; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.After != "a = 10\nb = 2\nc = 3\nd = 40\n" {
		t.Fatalf("After = %q", got.After)
	}
	if got.Hint == nil || got.Hint.StartLine != 1 || got.Hint.EndLine != 4 || got.Hint.LineDelta != 0 {
		t.Fatalf("merged hint = %+v, want lines 1-4 delta 0", got.Hint)
	}
}

func TestUpdateErrors(t *testing.T) {
	m := NewManager(Config{})
	s, _ := m.Open()
	if err := s.Update("f.py", 1, nil, nil); err == nil {
		t.Fatal("empty edit batch accepted")
	}
	// Range edit against a file the session never opened.
	err := s.Update("f.py", 1, []Edit{{
		Range: &Range{Start: Pos{Line: 0, Character: 0}, End: Pos{Line: 0, Character: 0}},
	}}, nil)
	if !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("range edit on unopened file: %v, want ErrUnknownFile", err)
	}
	openFile(t, s, "f.py", "a = 1\n")
	bad := []Range{
		{Start: Pos{Line: 5, Character: 0}, End: Pos{Line: 5, Character: 0}},   // line out of range
		{Start: Pos{Line: 0, Character: 99}, End: Pos{Line: 0, Character: 99}}, // char out of range
		{Start: Pos{Line: 1, Character: 0}, End: Pos{Line: 0, Character: 0}},   // end before start
		{Start: Pos{Line: -1, Character: 0}, End: Pos{Line: 0, Character: 0}},  // negative
	}
	for i, r := range bad {
		r := r
		err := s.Update("f.py", 2, []Edit{{Range: &r, Text: "x"}}, nil)
		if !errors.Is(err, ErrBadRange) {
			t.Errorf("bad range %d: %v, want ErrBadRange", i, err)
		}
	}
	// A failed batch leaves the overlay untouched.
	content, version, _ := s.Snapshot("f.py")
	if content != "a = 1\n" || version != 1 {
		t.Fatalf("failed edits moved the overlay: %q v%d", content, version)
	}
}

// TestScanCallbackSerialized: the scan callback runs under the session
// lock with a consistent Before/After pair, and the stored state chains
// change to change.
func TestScanCallbackSerialized(t *testing.T) {
	m := NewManager(Config{})
	s, _ := m.Open()
	openFile(t, s, "f.py", "v0\n")
	var order []string
	for i := 1; i <= 5; i++ {
		i := i
		err := s.Update("f.py", i+1, []Edit{{Text: fmt.Sprintf("v%d\n", i)}}, func(ch *Change) any {
			order = append(order, fmt.Sprintf("%s->%s prev=%v",
				strings.TrimSpace(ch.Before), strings.TrimSpace(ch.After), ch.Prev))
			return i
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	want := []string{
		"v0->v1 prev=<nil>", "v1->v2 prev=1", "v2->v3 prev=2", "v3->v4 prev=3", "v4->v5 prev=4",
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("change %d = %q, want %q", i, order[i], want[i])
		}
	}
}

// TestConcurrentSessions: distinct sessions advance in parallel without
// cross-talk; run under -race this is the locking check.
func TestConcurrentSessions(t *testing.T) {
	m := NewManager(Config{})
	const sessions, edits = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		s, err := m.Open()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, s *Session) {
			defer wg.Done()
			content := fmt.Sprintf("session%d = 0\n", g)
			if err := s.Update("f.py", 1, []Edit{{Text: content}}, nil); err != nil {
				errs <- err
				return
			}
			for i := 1; i <= edits; i++ {
				want := fmt.Sprintf("session%d = %d\n", g, i-1)
				err := s.Update("f.py", i+1, []Edit{{
					Range: &Range{Start: Pos{Line: 0, Character: 0},
						End: Pos{Line: 0, Character: len(want) - 1}},
					Text: fmt.Sprintf("session%d = %d", g, i),
				}}, func(ch *Change) any {
					if ch.Before != want {
						errs <- fmt.Errorf("session %d edit %d: before = %q, want %q", g, i, ch.Before, want)
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
			content, _, _ = s.Snapshot("f.py")
			if want := fmt.Sprintf("session%d = %d\n", g, edits); content != want {
				errs <- fmt.Errorf("session %d final content %q, want %q", g, content, want)
			}
		}(g, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
