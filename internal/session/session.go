// Package session holds per-client editor state for namer-serve's
// long-lived sessions, modeled on gopls overlays: a session is a set of
// open file overlays with versioned contents, advanced by didChange-style
// incremental edits (range + replacement text, with a full-content
// fallback), plus whatever per-file scan state the serving layer attaches.
//
// The package is deliberately analysis-agnostic: it owns identity, the
// overlay text, edit application (including the line-range hints the
// incremental scanner wants), per-session serialization, idle eviction,
// and capacity — while the scan state it stores per file is an opaque
// value managed by the caller. That keeps the locking story in one
// place: a change locks its session for the whole apply-scan-store
// cycle, so edits to one session serialize while distinct sessions
// proceed in parallel.
package session

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"namer/internal/core"
)

// Defaults for Config zero values.
const (
	DefaultMaxSessions = 4096
	DefaultIdleTTL     = 5 * time.Minute
)

// Errors the manager and edit application return; the serving layer
// maps them to HTTP statuses.
var (
	// ErrTooManySessions: capacity reached; the client should retry
	// after others close or idle out.
	ErrTooManySessions = errors.New("session: too many open sessions")
	// ErrUnknownFile: a range edit addressed a file the session has no
	// overlay for (the first change to a file must carry full content).
	ErrUnknownFile = errors.New("session: no overlay for file")
	// ErrBadRange: an edit range does not fit the overlay content.
	ErrBadRange = errors.New("session: edit range out of bounds")
)

// Metrics are optional instrumentation hooks, satisfied by the obs
// package's Gauge and Counter.
type Metrics struct {
	// Count tracks the number of open sessions.
	Count interface{ Set(v int64) }
	// IdleEvictions counts sessions evicted by the idle sweep.
	IdleEvictions interface{ Inc() }
}

// Config configures a Manager.
type Config struct {
	// MaxSessions caps concurrently open sessions; 0 means
	// DefaultMaxSessions, negative means unlimited.
	MaxSessions int
	// IdleTTL evicts sessions with no activity for this long; 0 means
	// DefaultIdleTTL, negative disables eviction.
	IdleTTL time.Duration
	// Metrics hooks; zero value is fine.
	Metrics Metrics
	// Now substitutes the clock, for tests; nil means time.Now.
	Now func() time.Time
}

// Manager owns the session table.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	sessions  map[string]*Session
	lastSweep time.Time
}

// NewManager returns an empty manager.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.IdleTTL == 0 {
		cfg.IdleTTL = DefaultIdleTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Manager{cfg: cfg, sessions: make(map[string]*Session)}
}

// Open creates a new session with a fresh unguessable id.
func (m *Manager) Open() (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(false)
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		return nil, ErrTooManySessions
	}
	s := &Session{id: newID(), created: m.cfg.Now(), files: make(map[string]*file)}
	s.lastActive.Store(s.created.UnixNano())
	m.sessions[s.id] = s
	m.setCount()
	return s, nil
}

// Get looks up a session and marks it active.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(false)
	s, ok := m.sessions[id]
	if ok {
		s.lastActive.Store(m.cfg.Now().UnixNano())
	}
	return s, ok
}

// Close removes a session; it reports whether the id was open. A change
// already in flight on the session finishes against the orphaned state.
func (m *Manager) Close(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.setCount()
	}
	return ok
}

// Len reports the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Sweep evicts every session idle longer than the TTL and returns how
// many were evicted. Open and Get sweep opportunistically (rate-limited
// to one pass per quarter TTL), so an explicit call is only needed by
// tests and shutdown paths.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(true)
}

func (m *Manager) sweepLocked(force bool) int {
	if m.cfg.IdleTTL < 0 {
		return 0
	}
	now := m.cfg.Now()
	if !force {
		if interval := m.cfg.IdleTTL / 4; now.Sub(m.lastSweep) < interval {
			return 0
		}
	}
	m.lastSweep = now
	cutoff := now.Add(-m.cfg.IdleTTL).UnixNano()
	evicted := 0
	for id, s := range m.sessions {
		if s.lastActive.Load() <= cutoff {
			delete(m.sessions, id)
			evicted++
			if m.cfg.Metrics.IdleEvictions != nil {
				m.cfg.Metrics.IdleEvictions.Inc()
			}
		}
	}
	if evicted > 0 {
		m.setCount()
	}
	return evicted
}

func (m *Manager) setCount() {
	if m.cfg.Metrics.Count != nil {
		m.cfg.Metrics.Count.Set(int64(len(m.sessions)))
	}
}

func newID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("session: reading random id: %v", err))
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Session is one client's overlay state.
type Session struct {
	id      string
	created time.Time
	// lastActive is unix nanos of the last Get, for the idle sweep.
	lastActive atomic.Int64

	// mu serializes changes within the session: apply + scan + store
	// run under it, so a session's edits are totally ordered while
	// distinct sessions run concurrently.
	mu    sync.Mutex
	files map[string]*file
}

// file is one open overlay.
type file struct {
	content string
	version int
	state   any
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Files returns the open overlay paths, in no particular order.
func (s *Session) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	return out
}

// Pos is a zero-based line/character position, LSP-style. Character is
// a byte offset within the line.
type Pos struct {
	Line      int `json:"line"`
	Character int `json:"character"`
}

// Range is a half-open [Start, End) text range.
type Range struct {
	Start Pos `json:"start"`
	End   Pos `json:"end"`
}

// Edit is one content change: replace Range with Text, or — with a nil
// Range — replace the whole file content (the didChange full-content
// fallback, also how a file is first opened in a session).
type Edit struct {
	Range *Range `json:"range,omitempty"`
	Text  string `json:"text"`
}

// Change is the outcome of applying one batch of edits, handed to the
// scan callback while the session lock is held.
type Change struct {
	Path    string
	Version int
	// Before/After are the overlay contents around the edits.
	Before string
	After  string
	// Hint bounds the touched lines of Before; nil when the batch
	// contained a full-content replacement (or opened the file), which
	// forces a full re-analysis.
	Hint *core.EditHint
	// Prev is the scan state the previous change stored; nil on the
	// first change of a file.
	Prev any
}

// Update applies one batch of edits to path and, if scan is non-nil,
// invokes it with the applied change and stores its return value as the
// file's new scan state. The whole cycle runs under the session lock.
// On an edit-application error the overlay is left untouched and scan
// is not called.
func (s *Session) Update(path string, version int, edits []Edit, scan func(*Change) any) error {
	if len(edits) == 0 {
		return fmt.Errorf("session: change for %s carries no edits", path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.files[path]
	hintValid := f != nil // an existing overlay makes range edits hintable
	if f == nil {
		if edits[0].Range != nil {
			return fmt.Errorf("%w: %s", ErrUnknownFile, path)
		}
		f = &file{}
	}
	content := f.content
	var hint *core.EditHint
	for _, e := range edits {
		if e.Range == nil {
			content = e.Text
			hint, hintValid = nil, false
			continue
		}
		next, applied, err := applyEdit(content, e)
		if err != nil {
			return err
		}
		content = next
		if !hintValid {
			continue
		}
		if hint == nil {
			h := applied
			hint = &h
		} else {
			h := hint.Merge(applied)
			hint = &h
		}
	}
	ch := &Change{
		Path:    path,
		Version: version,
		Before:  f.content,
		After:   content,
		Hint:    hint,
		Prev:    f.state,
	}
	f.content = content
	f.version = version
	s.files[path] = f
	if scan != nil {
		f.state = scan(ch)
	}
	return nil
}

// Snapshot returns a file's current overlay content and version.
func (s *Session) Snapshot(path string) (content string, version int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.files[path]
	if f == nil {
		return "", 0, false
	}
	return f.content, f.version, true
}

// applyEdit replaces one range in content, returning the new content
// and the 1-based line hint of the touched region.
func applyEdit(content string, e Edit) (string, core.EditHint, error) {
	lines := strings.Split(content, "\n")
	so, err := offsetOf(lines, e.Range.Start)
	if err != nil {
		return "", core.EditHint{}, err
	}
	eo, err := offsetOf(lines, e.Range.End)
	if err != nil {
		return "", core.EditHint{}, err
	}
	if eo < so {
		return "", core.EditHint{}, fmt.Errorf("%w: end %d:%d before start %d:%d",
			ErrBadRange, e.Range.End.Line, e.Range.End.Character,
			e.Range.Start.Line, e.Range.Start.Character)
	}
	out := content[:so] + e.Text + content[eo:]
	hint := core.EditHint{
		StartLine: e.Range.Start.Line + 1,
		EndLine:   e.Range.End.Line + 1,
		LineDelta: strings.Count(e.Text, "\n") - (e.Range.End.Line - e.Range.Start.Line),
	}
	return out, hint, nil
}

// offsetOf converts a position to a byte offset over split lines,
// rejecting positions outside the content.
func offsetOf(lines []string, p Pos) (int, error) {
	if p.Line < 0 || p.Line >= len(lines) {
		return 0, fmt.Errorf("%w: line %d of %d", ErrBadRange, p.Line, len(lines))
	}
	if p.Character < 0 || p.Character > len(lines[p.Line]) {
		return 0, fmt.Errorf("%w: character %d on line %d (%d bytes)",
			ErrBadRange, p.Character, p.Line, len(lines[p.Line]))
	}
	off := 0
	for i := 0; i < p.Line; i++ {
		off += len(lines[i]) + 1
	}
	return off + p.Character, nil
}
