package corpus

import (
	"fmt"
	"math/rand"

	"namer/internal/javalang"
)

// genJavaFile emits one Java source file exercising the paper's idioms,
// returning the parsed file and any injected issues.
func genJavaFile(rng *rand.Rand, repo string, idx int, cfg Config) (*SourceFile, []*Issue) {
	e := &emitter{}
	var issues []*Issue
	add := func(is *Issue) { issues = append(issues, is) }

	noun := pick(rng, nouns)
	cls := title(noun) + "Service"
	a1, a2 := pick2(rng, attrs)

	e.add(fmt.Sprintf("package com.example.%s;", repo))
	e.blank()
	e.add("import android.content.Intent;")
	e.add("import android.app.ProgressDialog;")
	e.add("import java.io.StringWriter;")
	e.blank()
	e.add(fmt.Sprintf("public class %s extends BaseService {", cls))
	e.add(fmt.Sprintf("    private String %s;", a1))
	e.add(fmt.Sprintf("    private int %s;", a2))
	e.add("    private int total;")
	e.blank()

	// Constructor idiom: this.<name> = <name>.
	ctorFate := roll(rng, cfg)
	p2 := a2
	if ctorFate == buggy {
		p2 = a2 + string(a2[len(a2)-1]) // doubled last letter: port -> portt
	}
	e.add(fmt.Sprintf("    public %s(String %s, int %s) {", cls, a1, p2))
	e.add(fmt.Sprintf("        this.%s = %s;", a1, a1))
	switch ctorFate {
	case buggy:
		ln := e.add(fmt.Sprintf("        this.%s = %s;", a2, p2))
		add(&Issue{Line: ln, Severity: CodeQuality, Category: "typo",
			Original: p2, Fixed: a2})
	case anomaly:
		e.add(fmt.Sprintf("        this.%s = %s;", pick(rng, attrs), p2))
	default:
		e.add(fmt.Sprintf("        this.%s = %s;", a2, a2))
	}
	e.add("    }")
	e.blank()

	// Loop idiom: for (int i = 0; ...), with wrong-type and non-i
	// variants.
	loopVar := "i"
	loopType := "int"
	loopFate := roll(rng, cfg)
	switch loopFate {
	case buggy:
		loopType = "double"
	case anomaly:
		loopVar = pick(rng, []string{"j", "k", "n"})
	}
	e.add("    public void process() {")
	ln := e.add(fmt.Sprintf("        for (%s %s = 0; %s < %d; %s++) {",
		loopType, loopVar, loopVar, 5+rng.Intn(40), loopVar))
	if loopFate == buggy {
		add(&Issue{Line: ln, Severity: SemanticDefect, Category: "wrong-type",
			Original: "double", Fixed: "int"})
	}
	e.add(fmt.Sprintf("            total += %s;", loopVar))
	e.add("        }")

	// Exception idiom: catch (Exception e) { e.printStackTrace(); }. The
	// catch variable name varies across the corpus, so without the
	// points-to analysis there is no frequent receiver-name path to stand
	// in for the receiver's Exception origin.
	catchType := "Exception"
	catchFate := roll(rng, cfg)
	stackCall := "printStackTrace"
	stackFate := roll(rng, cfg)
	if catchFate == buggy {
		catchType = "Throwable"
	}
	if stackFate == buggy && catchFate != buggy {
		stackCall = "getStackTrace"
	}
	catchVar := pick(rng, []string{"e", "ex", "err"})
	e.add("        try {")
	e.add("            risky();")
	cln := e.add(fmt.Sprintf("        } catch (%s %s) {", catchType, catchVar))
	if catchFate == buggy {
		add(&Issue{Line: cln, Severity: SemanticDefect, Category: "wrong-exception",
			Original: "Throwable", Fixed: "Exception"})
	}
	sln := e.add(fmt.Sprintf("            %s.%s();", catchVar, stackCall))
	if stackCall == "getStackTrace" {
		add(&Issue{Line: sln, Severity: SemanticDefect, Category: "wrong-api",
			Original: "get", Fixed: "print"})
	}
	e.add("        }")
	e.add("    }")
	e.blank()

	// Recorder idiom: a 3-subtoken zero-arg call whose first subtoken is
	// legitimately "get". Without the points-to analysis this shares a
	// name path prefix with printStackTrace, dragging that pattern's
	// satisfaction ratio below the pruning threshold — the "w/o A" effect.
	recVar := pick(rng, []string{"recorder", "tracker", "monitor", "journal"})
	e.add(fmt.Sprintf("    public void log(Recorder %s) {", recVar))
	e.add(fmt.Sprintf("        %s.getLastEntry();", recVar))
	e.add("    }")
	e.blank()

	// Payload idiom: two API families whose calls share every subtoken
	// except the first — Emitter.sendPayloadNow() vs Mailer.postPayloadNow()
	// — so only the receiver's origin separates them. Without the
	// points-to analysis both families mix at the same name path prefix
	// (send vs post each ~50%) and neither pattern survives pruning: the
	// Java "w/o A" effect of Table 5.
	payVar := pick(rng, []string{"sink", "relay", "outbox", "queue"})
	if rng.Intn(2) == 0 {
		verb := "send"
		fate := roll(rng, cfg)
		if fate == buggy {
			verb = "post"
		}
		e.add(fmt.Sprintf("    public void deliver(Emitter %s) {", payVar))
		pln := e.add(fmt.Sprintf("        %s.%sPayloadNow();", payVar, verb))
		if fate == buggy {
			add(&Issue{Line: pln, Severity: SemanticDefect, Category: "wrong-api",
				Original: "post", Fixed: "send"})
		}
		e.add("    }")
	} else {
		verb := "post"
		fate := roll(rng, cfg)
		if fate == buggy {
			verb = "send"
		}
		e.add(fmt.Sprintf("    public void deliver(Mailer %s) {", payVar))
		pln := e.add(fmt.Sprintf("        %s.%sPayloadNow();", payVar, verb))
		if fate == buggy {
			add(&Issue{Line: pln, Severity: SemanticDefect, Category: "wrong-api",
				Original: "send", Fixed: "post"})
		}
		e.add("    }")
	}
	e.blank()

	// Android idiom: startActivity with a descriptively-named Intent. The
	// anomaly is a legitimate alternative name (false-positive pressure).
	intentVar := "intent"
	intentFate := roll(rng, cfg)
	switch intentFate {
	case buggy:
		intentVar = "i"
	case anomaly:
		intentVar = "data"
	}
	e.add(fmt.Sprintf("    public void open(Context context, Intent %s) {", intentVar))
	iln := e.add(fmt.Sprintf("        context.startActivity(%s);", intentVar))
	if intentFate == buggy {
		add(&Issue{Line: iln, Severity: CodeQuality, Category: "indescriptive",
			Original: "i", Fixed: "intent"})
	}
	e.add("    }")
	e.blank()

	// Dialog idiom: progressDialog, not progDialog. The anomaly is a
	// legitimate two-subtoken alternative.
	dlgVar := "progressDialog"
	dlgFate := roll(rng, cfg)
	switch dlgFate {
	case buggy:
		dlgVar = "progDialog"
	case anomaly:
		dlgVar = "mainDialog"
	}
	e.add(fmt.Sprintf("    public void hide(ProgressDialog %s) {", dlgVar))
	dln := e.add(fmt.Sprintf("        %s.dismiss();", dlgVar))
	if dlgFate == buggy {
		add(&Issue{Line: dln, Severity: CodeQuality, Category: "confusing",
			Original: "prog", Fixed: "progress"})
	}
	e.add("    }")
	e.blank()

	// Writer idiom: the variable named after its class. The anomaly is
	// the paper's Example 7 false positive (outputWriter is legitimate).
	wVar := "stringWriter"
	if roll(rng, cfg) == anomaly {
		wVar = "outputWriter"
	}
	e.add(fmt.Sprintf("    public void dump(String %s) {", a1))
	e.add(fmt.Sprintf("        StringWriter %s = new StringWriter();", wVar))
	e.add(fmt.Sprintf("        %s.write(%s);", wVar, a1))
	e.add("    }")

	// Render idiom: a two-argument call with a canonical argument order;
	// swapped arguments are the Rice et al. defect class (§6.1).
	// Lower injection rate, as with the Python swap channel.
	swa, swb := "x", "y"
	swapBuggy := rng.Float64() < cfg.IssueRate*0.3
	if swapBuggy {
		swa, swb = "y", "x"
	}
	e.add("    public void render(int x, int y) {")
	e.add("        total = x + y;")
	e.add("    }")
	e.blank()
	e.add("    public void paint(int x, int y) {")
	swln := e.add(fmt.Sprintf("        this.render(%s, %s);", swa, swb))
	if swapBuggy {
		add(&Issue{Line: swln, Severity: SemanticDefect, Category: "swapped-args",
			Original: "y", Fixed: "x"})
		add(&Issue{Line: swln, Severity: SemanticDefect, Category: "swapped-args",
			Original: "x", Fixed: "y"})
	}
	e.add("    }")
	e.blank()

	// Setter idiom; the anomaly is a legitimately different name.
	setAttr := pick(rng, attrs)
	switch roll(rng, cfg) {
	case buggy:
		e.add(fmt.Sprintf("    public void set%s(int value) {", title(setAttr)))
		vln := e.add(fmt.Sprintf("        this.%s = value;", setAttr))
		add(&Issue{Line: vln, Severity: CodeQuality, Category: "minor",
			Original: "value", Fixed: setAttr})
	case anomaly:
		other := pick(rng, nouns)
		e.add(fmt.Sprintf("    public void set%s(int %s) {", title(setAttr), other))
		e.add(fmt.Sprintf("        this.%s = %s;", setAttr, other))
	default:
		e.add(fmt.Sprintf("    public void set%s(int %s) {", title(setAttr), setAttr))
		e.add(fmt.Sprintf("        this.%s = %s;", setAttr, setAttr))
	}
	e.add("    }")
	e.add("}")

	src := e.String()
	root, err := javalang.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("corpus: generated Java does not parse: %v\n%s", err, src))
	}
	return &SourceFile{
		Path:   fmt.Sprintf("%s/src/File%02d.java", repo, idx),
		Source: src,
		Root:   root,
	}, issues
}
