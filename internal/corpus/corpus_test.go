package corpus

import (
	"testing"

	"namer/internal/ast"
	"namer/internal/confusion"
)

func TestGeneratePythonParses(t *testing.T) {
	cfg := DefaultConfig(ast.Python)
	cfg.Repos = 6
	cfg.FilesPerRepo = 3
	c := Generate(cfg) // panics on parse failure
	if c.TotalFiles() != 18 {
		t.Errorf("files = %d, want 18", c.TotalFiles())
	}
	if len(c.Commits) == 0 {
		t.Error("no commits generated")
	}
	for _, r := range c.Repos {
		for _, f := range r.Files {
			if f.Root == nil || len(f.Root.Children) == 0 {
				t.Errorf("%s: empty AST", f.Path)
			}
		}
	}
}

func TestGenerateJavaParses(t *testing.T) {
	cfg := DefaultConfig(ast.Java)
	cfg.Repos = 6
	cfg.FilesPerRepo = 3
	c := Generate(cfg)
	if c.TotalFiles() != 18 {
		t.Errorf("files = %d, want 18", c.TotalFiles())
	}
	if len(c.Commits) == 0 {
		t.Error("no commits generated")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(ast.Python)
	cfg.Repos = 4
	cfg.FilesPerRepo = 2
	a := Generate(cfg)
	b := Generate(cfg)
	if a.TotalFiles() != b.TotalFiles() || len(a.Issues) != len(b.Issues) {
		t.Fatal("generation is not deterministic")
	}
	for i, ra := range a.Repos {
		rb := b.Repos[i]
		for j, fa := range ra.Files {
			if fa.Source != rb.Files[j].Source {
				t.Fatalf("file %s differs across runs", fa.Path)
			}
		}
	}
}

func TestIssuesInjected(t *testing.T) {
	cfg := DefaultConfig(ast.Python)
	cfg.Seed = 3
	cfg.IssueRate = 0.3 // force plenty of issues
	c := Generate(cfg)
	if len(c.Issues) == 0 {
		t.Fatal("no issues injected at 30% rate")
	}
	sem, qual := 0, 0
	cats := map[string]bool{}
	for _, is := range c.Issues {
		switch is.Severity {
		case SemanticDefect:
			sem++
		case CodeQuality:
			qual++
		default:
			t.Errorf("issue with severity %v", is.Severity)
		}
		cats[is.Category] = true
		if is.Line == 0 || is.Original == "" || is.Fixed == "" {
			t.Errorf("incomplete issue: %+v", is)
		}
	}
	if sem == 0 || qual == 0 {
		t.Errorf("severity mix: %d semantic, %d quality", sem, qual)
	}
	for _, want := range []string{"typo", "inconsistent", "wrong-api"} {
		if !cats[want] {
			t.Errorf("category %q never generated", want)
		}
	}
}

func TestJudge(t *testing.T) {
	cfg := DefaultConfig(ast.Python)
	cfg.Seed = 3
	cfg.IssueRate = 0.5
	c := Generate(cfg)
	if len(c.Issues) == 0 {
		t.Fatal("need issues")
	}
	is := c.Issues[0]
	sev, cat := c.Judge(is.Repo, is.Path, is.Line, is.Original)
	if sev != is.Severity || cat != is.Category {
		t.Errorf("Judge = (%v, %q), want (%v, %q)", sev, cat, is.Severity, is.Category)
	}
	// Fixed-side match also counts (consistency violations report either
	// direction).
	sev2, _ := c.Judge(is.Repo, is.Path, is.Line, is.Fixed)
	_ = sev2 // either outcome is acceptable; just must not panic
	// Unknown location is a false positive.
	if sev, _ := c.Judge(is.Repo, is.Path, is.Line+100, is.Original); sev != NotIssue {
		t.Error("far-away report should be a false positive")
	}
	if sev, _ := c.Judge("nope", "nope.py", 1, "x"); sev != NotIssue {
		t.Error("unknown file should be a false positive")
	}
}

func TestCommitsMineExpectedPairs(t *testing.T) {
	for _, lang := range []ast.Language{ast.Python, ast.Java} {
		cfg := DefaultConfig(lang)
		cfg.Repos = 1
		cfg.FilesPerRepo = 1
		c := Generate(cfg)
		ps := confusion.MinePairs(c.Commits)
		var want [][2]string
		if lang == ast.Python {
			want = [][2]string{
				{"True", "Equal"}, {"Equals", "Equal"}, {"xrange", "range"},
				{"args", "kwargs"}, {"N", "np"}, {"e", "event"}, {"j", "i"},
				{"or", "of"}, {"por", "port"},
			}
		} else {
			want = [][2]string{
				{"double", "int"}, {"Throwable", "Exception"}, {"get", "print"},
				{"i", "intent"}, {"prog", "progress"}, {"publick", "public"},
				{"output", "string"}, {"post", "send"}, {"send", "post"},
			}
		}
		for _, w := range want {
			if !ps.Contains(w[0], w[1]) {
				t.Errorf("%v: pair %v not mined from commits", lang, w)
			}
		}
	}
}

func TestSeverityString(t *testing.T) {
	if NotIssue.String() == "" || CodeQuality.String() == "" || SemanticDefect.String() == "" {
		t.Error("severity names missing")
	}
}

func TestJudgeMatchesOnlySameSubtoken(t *testing.T) {
	cfg := DefaultConfig(ast.Java)
	cfg.Seed = 9
	cfg.IssueRate = 0.5
	c := Generate(cfg)
	if len(c.Issues) == 0 {
		t.Fatal("need issues")
	}
	is := c.Issues[0]
	if sev, _ := c.Judge(is.Repo, is.Path, is.Line, "completely_unrelated"); sev != NotIssue {
		t.Error("unrelated subtoken should not match an injected issue")
	}
}
