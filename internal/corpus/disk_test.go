package corpus

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"namer/internal/ast"
)

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := &Corpus{
		Lang: ast.Python,
		Repos: []*Repo{{
			Name: "repo0",
			Files: []*SourceFile{
				{Path: "repo0/a.py", Source: "def get_name():\n    return name\n"},
			},
		}},
		CommitSources: [][2]string{
			{"def get_user_id():\n    return user_name\n", "def get_user_id():\n    return user_id\n"},
		},
		Issues: []*Issue{{
			Repo: "repo0", Path: "repo0/a.py", Line: 1,
			Severity: CodeQuality, Category: "confusing",
			Original: "name", Fixed: "id",
		}},
	}
	if err := c.WriteTo(dir); err != nil {
		t.Fatal(err)
	}

	pairs, err := ReadCommits(filepath.Join(dir, "commits"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pairs, c.CommitSources) {
		t.Fatalf("commit pairs changed across round trip:\n got %q\nwant %q", pairs, c.CommitSources)
	}
	commits, skipped := ParseCommitSources(ast.Python, pairs)
	if skipped != 0 || len(commits) != 1 {
		t.Fatalf("parsed %d commits with %d skipped, want 1/0", len(commits), skipped)
	}

	issues, err := ReadIssues(filepath.Join(dir, "issues.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !reflect.DeepEqual(*issues[0], *c.Issues[0]) {
		t.Fatalf("issues changed across round trip: %+v", issues)
	}

	src, err := os.ReadFile(filepath.Join(dir, "repo0", "a.py"))
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != c.Repos[0].Files[0].Source {
		t.Fatal("source file changed across round trip")
	}
}

func TestReadCommitsErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadCommits(filepath.Join(dir, "commits")); err == nil {
		t.Fatal("missing commits.json accepted")
	}
	commitsDir := filepath.Join(dir, "commits")
	if err := os.MkdirAll(commitsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(commitsDir, "commits.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCommits(commitsDir)
	if err == nil {
		t.Fatal("corrupt commits.json accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the offending file %s", err, path)
	}
}

func TestReadIssuesErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadIssues(filepath.Join(dir, "issues.json")); err == nil {
		t.Fatal("missing issues.json accepted")
	}
	path := filepath.Join(dir, "issues.json")
	if err := os.WriteFile(path, []byte("[{\"Repo\": 3]"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadIssues(path)
	if err == nil {
		t.Fatal("corrupt issues.json accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the offending file %s", err, path)
	}
}

func TestParseCommitSourcesCountsSkipped(t *testing.T) {
	pairs := [][2]string{
		{"x = 1\n", "y = 1\n"},
		{"def broken(:\n", "def broken():\n    pass\n"}, // before does not parse
		{"a = 2\n", "b = ("},                            // after does not parse
	}
	commits, skipped := ParseCommitSources(ast.Python, pairs)
	if len(commits) != 1 || skipped != 2 {
		t.Fatalf("parsed %d commits with %d skipped, want 1/2", len(commits), skipped)
	}
}
