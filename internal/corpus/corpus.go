// Package corpus deterministically generates the "Big Code" dataset that
// stands in for the paper's GitHub corpus (1M Python / 4M Java files):
// repositories of source files exhibiting the naming idioms the paper's
// examples are built on, a controlled rate of injected naming issues with
// ground-truth labels (playing the role of the paper's manual inspection),
// legitimate-but-anomalous code that creates false-positive pressure, and
// commit histories containing the naming fixes from which confusing word
// pairs are mined.
//
// The substitution is documented in DESIGN.md: every downstream code path
// (mining, matching, analysis, feature extraction, classification) is
// identical to a run on real data; only the bytes differ.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"namer/internal/ast"
	"namer/internal/confusion"
)

// Severity grades an inspected report, following §5.1's categories.
type Severity int

// Severity levels.
const (
	NotIssue Severity = iota // false positive
	CodeQuality
	SemanticDefect
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case NotIssue:
		return "false positive"
	case CodeQuality:
		return "code quality issue"
	case SemanticDefect:
		return "semantic defect"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Issue is one injected ground-truth naming issue.
type Issue struct {
	Repo     string
	Path     string
	Line     int
	Severity Severity
	// Category refines code quality issues per Table 4: "confusing",
	// "indescriptive", "inconsistent", "minor", "typo"; semantic defects
	// use "wrong-api", "deprecated-api", "wrong-type", "wrong-exception".
	Category string
	// Original is the wrong subtoken as it appears in the code; Fixed is
	// the intended subtoken.
	Original string
	Fixed    string
}

// SourceFile is one generated file with its parsed AST.
type SourceFile struct {
	Path   string
	Source string
	Root   *ast.Node
}

// Repo is one generated repository.
type Repo struct {
	Name  string
	Files []*SourceFile
}

// Corpus is a generated dataset.
type Corpus struct {
	Lang    ast.Language
	Repos   []*Repo
	Commits []confusion.Commit
	// CommitSources holds the textual before/after pair of each commit,
	// aligned with Commits, so corpora can be written to disk.
	CommitSources [][2]string
	Issues        []*Issue

	issueKey map[string][]*Issue // repo|path -> issues
}

// Config controls generation.
type Config struct {
	Lang         ast.Language
	Seed         int64
	Repos        int
	FilesPerRepo int
	// IssueRate is the probability that an idiom instance is emitted in
	// its buggy form (default 0.04).
	IssueRate float64
	// AnomalyRate is the probability of emitting a legitimate-but-unusual
	// variant (false-positive pressure, default 0.06).
	AnomalyRate float64
	// CommitFixes is how many fix commits to synthesize per confusing
	// pair (default 12, comfortably above mining thresholds).
	CommitFixes int
}

// DefaultConfig returns a corpus size that mines well and runs fast.
func DefaultConfig(lang ast.Language) Config {
	return Config{
		Lang:         lang,
		Seed:         1,
		Repos:        36,
		FilesPerRepo: 5,
		IssueRate:    0.04,
		AnomalyRate:  0.06,
		CommitFixes:  12,
	}
}

// Generate builds the corpus. Generation is deterministic in the seed. It
// panics if a generated file fails to parse (a generator bug, covered by
// tests).
func Generate(cfg Config) *Corpus {
	if cfg.Repos <= 0 {
		cfg.Repos = 36
	}
	if cfg.FilesPerRepo <= 0 {
		cfg.FilesPerRepo = 5
	}
	if cfg.IssueRate <= 0 {
		cfg.IssueRate = 0.04
	}
	if cfg.AnomalyRate <= 0 {
		cfg.AnomalyRate = 0.06
	}
	if cfg.CommitFixes <= 0 {
		cfg.CommitFixes = 12
	}
	c := &Corpus{Lang: cfg.Lang, issueKey: make(map[string][]*Issue)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for r := 0; r < cfg.Repos; r++ {
		repo := &Repo{Name: fmt.Sprintf("repo%03d", r)}
		for f := 0; f < cfg.FilesPerRepo; f++ {
			var sf *SourceFile
			var issues []*Issue
			if cfg.Lang == ast.Python {
				sf, issues = genPythonFile(rng, repo.Name, f, cfg)
			} else {
				sf, issues = genJavaFile(rng, repo.Name, f, cfg)
			}
			repo.Files = append(repo.Files, sf)
			for _, is := range issues {
				is.Repo = repo.Name
				is.Path = sf.Path
				c.Issues = append(c.Issues, is)
				k := repo.Name + "|" + sf.Path
				c.issueKey[k] = append(c.issueKey[k], is)
			}
		}
		c.Repos = append(c.Repos, repo)
	}
	c.Commits, c.CommitSources = genCommits(rng, cfg)
	return c
}

// Judge simulates the paper's manual inspection: given a report location
// and the original (wrong) subtoken it flags, it returns the ground-truth
// severity and category. Consistency violations can be reported in either
// direction, so a report naming either side of the injected pair counts.
// Reports not corresponding to an injected issue are false positives.
func (c *Corpus) Judge(repo, path string, line int, original string) (Severity, string) {
	if is := c.IssueAt(repo, path, line, original); is != nil {
		return is.Severity, is.Category
	}
	return NotIssue, ""
}

// IssueAt returns the injected issue matching a report, if any.
func (c *Corpus) IssueAt(repo, path string, line int, original string) *Issue {
	for _, is := range c.issueKey[repo+"|"+path] {
		if is.Original != original && is.Fixed != original {
			continue
		}
		if line == 0 || is.Line == 0 || abs(line-is.Line) <= 1 {
			return is
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TotalFiles returns the number of generated files.
func (c *Corpus) TotalFiles() int {
	n := 0
	for _, r := range c.Repos {
		n += len(r.Files)
	}
	return n
}

// emitter builds a source file line by line, tracking line numbers so
// injected issues can record their exact location.
type emitter struct {
	b    strings.Builder
	line int
}

func (e *emitter) add(s string) int {
	ln := e.line + 1
	e.b.WriteString(s)
	e.b.WriteByte('\n')
	e.line += strings.Count(s, "\n") + 1
	return ln
}

func (e *emitter) blank() { e.add("") }

func (e *emitter) String() string { return e.b.String() }

// word pools for name variety.
var (
	nouns = []string{
		"picture", "slide", "user", "account", "order", "item", "record",
		"message", "token", "session", "config", "buffer", "packet",
		"channel", "widget", "report", "event", "task", "job", "node",
	}
	attrs = []string{
		"name", "path", "count", "size", "width", "height", "offset",
		"index", "label", "title", "value", "status", "color", "port",
		"angle", "limit", "total", "weight", "score", "depth",
	}
	verbs = []string{
		"load", "save", "update", "reset", "compute", "render", "parse",
		"build", "fetch", "apply", "merge", "split", "scan", "check",
	}
)

func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}

func pick2(rng *rand.Rand, pool []string) (string, string) {
	a := rng.Intn(len(pool))
	b := rng.Intn(len(pool) - 1)
	if b >= a {
		b++
	}
	return pool[a], pool[b]
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
