package corpus

import (
	"fmt"
	"math/rand"

	"namer/internal/pylang"
)

// roll decides how one idiom instance is emitted.
type fate int

const (
	ok fate = iota
	buggy
	anomaly
)

func roll(rng *rand.Rand, cfg Config) fate {
	r := rng.Float64()
	switch {
	case r < cfg.IssueRate:
		return buggy
	case r < cfg.IssueRate+cfg.AnomalyRate:
		return anomaly
	default:
		return ok
	}
}

// genPythonFile emits one Python source file exercising the paper's
// idioms, returning the parsed file and any injected issues.
func genPythonFile(rng *rand.Rand, repo string, idx int, cfg Config) (*SourceFile, []*Issue) {
	e := &emitter{}
	var issues []*Issue
	add := func(is *Issue) { issues = append(issues, is) }

	noun := pick(rng, nouns)
	cls := title(noun) + "Manager"
	a1, a2 := pick2(rng, attrs)

	e.add("from unittest import TestCase")
	useNumpy := rng.Float64() < 0.5
	npAlias := "np"
	var npIssue bool
	if useNumpy {
		if roll(rng, cfg) == buggy {
			npAlias = "N"
			npIssue = true
		}
		e.add(fmt.Sprintf("import numpy as %s", npAlias))
	}
	e.blank()
	e.blank()

	// Data class with the self.<name> = <name> constructor idiom.
	e.add(fmt.Sprintf("class %s:", cls))
	params := []string{"self", a1, a2}
	ctorFate := roll(rng, cfg)
	typoParam := a2
	if ctorFate == buggy {
		typoParam = a2[:len(a2)-1] // drop last rune: port -> por
		params[2] = typoParam
	}
	e.add(fmt.Sprintf("    def __init__(%s, %s, %s):", params[0], params[1], params[2]))
	e.add(fmt.Sprintf("        self.%s = %s", a1, a1))
	switch ctorFate {
	case buggy:
		ln := e.add(fmt.Sprintf("        self.%s = %s", a2, typoParam))
		add(&Issue{Line: ln, Severity: CodeQuality, Category: "typo",
			Original: typoParam, Fixed: a2})
	case anomaly:
		// Legitimate inconsistent assignment: correct code, violates the
		// consistency idiom (false-positive pressure).
		e.add(fmt.Sprintf("        self.%s = %s", pick(rng, attrs), a2))
	default:
		e.add(fmt.Sprintf("        self.%s = %s", a2, a2))
	}
	// Occasionally an intentionally confusing or inconsistent store.
	e.add("        handler = make_handler()")
	e.add("        docstring = load_doc()")
	switch roll(rng, cfg) {
	case buggy:
		if rng.Intn(2) == 0 {
			ln := e.add("        self.help = docstring")
			add(&Issue{Line: ln, Severity: CodeQuality, Category: "inconsistent",
				Original: "help", Fixed: "docstring"})
		} else {
			ln := e.add("        self.factory = handler")
			add(&Issue{Line: ln, Severity: CodeQuality, Category: "confusing",
				Original: "factory", Fixed: "handler"})
		}
	default:
		e.add("        self.handler = handler")
		e.add("        self.docstring = docstring")
	}
	e.blank()

	// Setter idiom: def <attr>_set(self, <attr>): self._<attr> = <attr>.
	// The anomaly is a differently-named but legitimate parameter.
	setAttr := pick(rng, attrs)
	switch roll(rng, cfg) {
	case buggy:
		e.add(fmt.Sprintf("    def %s_set(self, value):", setAttr))
		ln := e.add(fmt.Sprintf("        self._%s = value", setAttr))
		add(&Issue{Line: ln, Severity: CodeQuality, Category: "minor",
			Original: "value", Fixed: setAttr})
	case anomaly:
		other := pick(rng, nouns)
		e.add(fmt.Sprintf("    def %s_set(self, %s):", setAttr, other))
		e.add(fmt.Sprintf("        self._%s = %s", setAttr, other))
	default:
		e.add(fmt.Sprintf("    def %s_set(self, %s):", setAttr, setAttr))
		e.add(fmt.Sprintf("        self._%s = %s", setAttr, setAttr))
	}
	e.blank()

	// Event handler idiom: descriptive parameter name. The anomaly is a
	// legitimate alternative name (false-positive pressure).
	switch roll(rng, cfg) {
	case buggy:
		e.add("    def on_event(self, e):")
		ln := e.add("        self.dispatch(e)")
		add(&Issue{Line: ln, Severity: CodeQuality, Category: "indescriptive",
			Original: "e", Fixed: "event"})
	case anomaly:
		e.add("    def on_event(self, signal):")
		e.add("        self.dispatch(signal)")
	default:
		e.add("    def on_event(self, event):")
		e.add("        self.dispatch(event)")
	}
	e.blank()

	// Keyworded-arguments idiom: **kwargs, not **args. The body updates a
	// dict rather than assigning, so this idiom does not pollute the
	// `self.<name> = <name>` consistency pattern.
	if f := roll(rng, cfg); f == buggy {
		ln := e.add("    def configure(self, **args):")
		e.add("        self.options.update(args)")
		add(&Issue{Line: ln, Severity: CodeQuality, Category: "confusing",
			Original: "args", Fixed: "kwargs"})
	} else {
		e.add("    def configure(self, **kwargs):")
		e.add("        self.options.update(kwargs)")
	}
	e.blank()

	// Clamp idiom: a two-argument call whose arguments have a canonical
	// order. Swapping them is the argument-selection defect class of Rice
	// et al. (§6.1); Namer detects it as a pair of mirrored confusing-word
	// violations (core.FindSwaps).
	// Swaps are injected at a lower rate than other issues: they are
	// genuine variable misuses, and at full rate they would dominate the
	// neural baselines' small report budget in Tables 10-11.
	a, b2 := "low", "high"
	swapBuggy := rng.Float64() < cfg.IssueRate*0.3
	if swapBuggy {
		a, b2 = "high", "low"
	}
	e.add("    def clamp(self, low, high):")
	e.add("        return min(max(self.total, low), high)")
	e.blank()
	e.add("    def rescale(self, low, high):")
	swln := e.add(fmt.Sprintf("        self.clamp(%s, %s)", a, b2))
	if swapBuggy {
		add(&Issue{Line: swln, Severity: SemanticDefect, Category: "swapped-args",
			Original: "high", Fixed: "low"})
		add(&Issue{Line: swln, Severity: SemanticDefect, Category: "swapped-args",
			Original: "low", Fixed: "high"})
	}
	e.blank()

	// Loop idiom: for i in range(NUM), with the occasional xrange bug and
	// the occasional legitimate non-i index (false-positive pressure).
	loopVar := "i"
	rangeFn := "range"
	loopFate := roll(rng, cfg)
	switch loopFate {
	case buggy:
		rangeFn = "xrange"
	case anomaly:
		loopVar = pick(rng, []string{"j", "k", "idx"})
	}
	e.add("    def process(self):")
	ln := e.add(fmt.Sprintf("        for %s in %s(%d):", loopVar, rangeFn, 5+rng.Intn(20)))
	if loopFate == buggy {
		add(&Issue{Line: ln, Severity: SemanticDefect, Category: "deprecated-api",
			Original: "xrange", Fixed: "range"})
	}
	e.add(fmt.Sprintf("            self.total += %s", loopVar))
	if useNumpy {
		npLine := e.add(fmt.Sprintf("        self.sz = %s.array(self.%s)", npAlias, a1))
		if npIssue {
			add(&Issue{Line: npLine, Severity: CodeQuality, Category: "indescriptive",
				Original: "N", Fixed: "np"})
		}
	}
	e.blank()
	e.blank()

	// Test class: the assertEqual idiom of Fig. 2. A share of files uses
	// a second assertion framework (Checker, with assertItem) whose calls
	// are syntactically identical apart from the receiver's origin —
	// without the points-to analysis the two families mix at the same
	// name path prefix and neither pattern survives pruning, which is the
	// "w/o A" effect of Tables 2 and 5.
	if rng.Float64() < 0.35 {
		e.add(fmt.Sprintf("class Test%s(Checker):", title(noun)))
		for t := 0; t < 3; t++ {
			v := pick(rng, nouns)
			at := pick(rng, attrs)
			num := 1 + rng.Intn(9000)
			e.add(fmt.Sprintf("    def test_%s_%d(self):", pick(rng, verbs), t))
			e.add(fmt.Sprintf("        %s = self.build_%s()", v, v))
			if roll(rng, cfg) == buggy {
				ln := e.add(fmt.Sprintf("        self.assertValue(%s.%s, %d)", v, at, num))
				add(&Issue{Line: ln, Severity: SemanticDefect, Category: "wrong-api",
					Original: "Value", Fixed: "Item"})
			} else {
				e.add(fmt.Sprintf("        self.assertItem(%s.%s, %d)", v, at, num))
			}
		}
	} else {
		e.add(fmt.Sprintf("class Test%s(TestCase):", title(noun)))
		for t := 0; t < 3; t++ {
			v := pick(rng, nouns)
			at := pick(rng, attrs)
			num := 1 + rng.Intn(9000)
			e.add(fmt.Sprintf("    def test_%s_%d(self):", pick(rng, verbs), t))
			e.add(fmt.Sprintf("        %s = self.build_%s()", v, v))
			switch roll(rng, cfg) {
			case buggy:
				if rng.Intn(2) == 0 {
					ln := e.add(fmt.Sprintf("        self.assertTrue(%s.%s, %d)", v, at, num))
					add(&Issue{Line: ln, Severity: SemanticDefect, Category: "wrong-api",
						Original: "True", Fixed: "Equal"})
				} else {
					ln := e.add(fmt.Sprintf("        self.assertEquals(%s.%s, %d)", v, at, num))
					add(&Issue{Line: ln, Severity: SemanticDefect, Category: "deprecated-api",
						Original: "Equals", Fixed: "Equal"})
				}
			default:
				e.add(fmt.Sprintf("        self.assertEqual(%s.%s, %d)", v, at, num))
			}
		}
	}

	src := e.String()
	root, err := pylang.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("corpus: generated Python does not parse: %v\n%s", err, src))
	}
	return &SourceFile{
		Path:   fmt.Sprintf("%s/src/file_%02d.py", repo, idx),
		Source: src,
		Root:   root,
	}, issues
}
