package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"namer/internal/ast"

	"namer/internal/confusion"
	"namer/internal/javalang"
	"namer/internal/pylang"
)

// fixTemplate is one naming-fix commit shape: the before source contains
// the mistaken name, the after source the corrected one. %d slots let the
// generator vary literals so commits are not byte-identical.
type fixTemplate struct {
	before string
	after  string
}

// Python naming-fix commit shapes, one per confusing pair the evaluation
// relies on (§3.2 extracted 150K pairs for Python; we synthesize the pairs
// the generated idioms need).
var pythonFixes = []fixTemplate{
	{"self.assertTrue(val, %d)\n", "self.assertEqual(val, %d)\n"},                                    // True -> Equal
	{"self.assertEquals(val, %d)\n", "self.assertEqual(val, %d)\n"},                                  // Equals -> Equal
	{"self.assertValue(val, %d)\n", "self.assertItem(val, %d)\n"},                                    // Value -> Item
	{"for i in xrange(%d):\n    use(i)\n", "for i in range(%d):\n    use(i)\n"},                      // xrange -> range
	{"def f(self, **args):\n    return args\n", "def f(self, **kwargs):\n    return kwargs\n"},       // args -> kwargs
	{"import numpy as N\nx = N.array(%d)\n", "import numpy as np\nx = np.array(%d)\n"},               // N -> np
	{"def on_event(self, e):\n    use(e, %d)\n", "def on_event(self, event):\n    use(event, %d)\n"}, // e -> event
	{"for j in range(%d):\n    use(j)\n", "for i in range(%d):\n    use(i)\n"},                       // j -> i
	{"num_or_process = %d\n", "num_of_process = %d\n"},                                               // or -> of
	{"self.port = por\npor = %d\n", "self.port = port\nport = %d\n"},                                 // por -> port
	{"self.clamp(high, low)\nuse(%d)\n", "self.clamp(low, high)\nuse(%d)\n"},                         // swap fix: high<->low
}

// Java naming-fix commit shapes.
var javaFixes = []fixTemplate{
	{"class A { void m() { for (double i = 0; i < %d; i++) { use(i); } } }",
		"class A { void m() { for (int i = 0; i < %d; i++) { use(i); } } }"}, // double -> int
	{"class A { void m() { try { f(%d); } catch (Throwable e) { e.printStackTrace(); } } }",
		"class A { void m() { try { f(%d); } catch (Exception e) { e.printStackTrace(); } } }"}, // Throwable -> Exception
	{"class A { void m(Exception e) { e.getStackTrace(); use(%d); } }",
		"class A { void m(Exception e) { e.printStackTrace(); use(%d); } }"}, // get -> print
	{"class A { void m(Context c, Intent i) { c.startActivity(i); use(%d); } }",
		"class A { void m(Context c, Intent intent) { c.startActivity(intent); use(%d); } }"}, // i -> intent
	{"class A { void m(ProgressDialog progDialog) { progDialog.dismiss(); use(%d); } }",
		"class A { void m(ProgressDialog progressDialog) { progressDialog.dismiss(); use(%d); } }"}, // prog -> progress
	{"class A { A(int publickKey) { this.publicKey = publickKey; use(%d); } }",
		"class A { A(int publicKey) { this.publicKey = publicKey; use(%d); } }"}, // publick -> public
	{"class A { void m() { StringWriter outputWriter = new StringWriter(); use(%d); } }",
		"class A { void m() { StringWriter stringWriter = new StringWriter(); use(%d); } }"}, // output -> string
	{"class A { void m(Emitter sink) { sink.postPayloadNow(); use(%d); } }",
		"class A { void m(Emitter sink) { sink.sendPayloadNow(); use(%d); } }"}, // post -> send
	{"class A { void m(Mailer outbox) { outbox.sendPayloadNow(); use(%d); } }",
		"class A { void m(Mailer outbox) { outbox.postPayloadNow(); use(%d); } }"}, // send -> post
	{"class A { void m(int x, int y) { render(y, x); use(%d); } }",
		"class A { void m(int x, int y) { render(x, y); use(%d); } }"}, // swap fix: x<->y
}

// typoFixTemplates synthesizes per-attribute typo-fix commit shapes
// (truncated last letter for Python, doubled last letter for Java), the
// most common rename-fix shape in real histories; they give the mined
// pair set coverage of the typo channel.
func typoFixTemplates(lang ast.Language) []fixTemplate {
	var out []fixTemplate
	for _, a := range attrs {
		if len(a) < 3 {
			continue
		}
		if lang == ast.Python {
			typo := a[:len(a)-1]
			out = append(out, fixTemplate{
				before: "def f(self, " + typo + "):\n    self." + a + " = " + typo + "\n    use(%d)\n",
				after:  "def f(self, " + a + "):\n    self." + a + " = " + a + "\n    use(%d)\n",
			})
		} else {
			typo := a + string(a[len(a)-1])
			out = append(out, fixTemplate{
				before: "class A { A(int " + typo + ") { this." + a + " = " + typo + "; use(%d); } }",
				after:  "class A { A(int " + a + ") { this." + a + " = " + a + "; use(%d); } }",
			})
		}
	}
	return out
}

// genCommits synthesizes the commit history containing naming fixes,
// returning both the parsed pairs and their source text.
func genCommits(rng *rand.Rand, cfg Config) ([]confusion.Commit, [][2]string) {
	templates := pythonFixes
	if cfg.Lang == ast.Java {
		templates = javaFixes
	}
	templates = append(append([]fixTemplate(nil), templates...), typoFixTemplates(cfg.Lang)...)
	var commits []confusion.Commit
	var sources [][2]string
	for _, tpl := range templates {
		for i := 0; i < cfg.CommitFixes; i++ {
			n := 1 + rng.Intn(100)
			before := tpl.before
			after := tpl.after
			if strings.Contains(before, "%d") {
				before = fmt.Sprintf(before, n)
				after = fmt.Sprintf(after, n)
			}
			commits = append(commits, parseCommit(cfg, before, after))
			sources = append(sources, [2]string{before, after})
		}
	}
	return commits, sources
}

func parseCommit(cfg Config, before, after string) confusion.Commit {
	b, errB := parseLang(cfg.Lang, before)
	a, errA := parseLang(cfg.Lang, after)
	if errB != nil || errA != nil {
		panic("corpus: bad commit template")
	}
	return confusion.Commit{Before: b, After: a}
}

// parseLang parses source in the given language.
func parseLang(lang ast.Language, src string) (*ast.Node, error) {
	if lang == ast.Python {
		return pylang.Parse(src)
	}
	return javalang.Parse(src)
}
