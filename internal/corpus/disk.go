package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"namer/internal/ast"
	"namer/internal/confusion"
)

// WriteTo materializes the corpus on disk under dir: one subdirectory per
// repository, an issues.json ground-truth file, and commits/commits.json
// with the before/after naming-fix pairs. The layout is what
// cmd/namer-mine and cmd/namer consume.
func (c *Corpus) WriteTo(dir string) error {
	for _, r := range c.Repos {
		for _, f := range r.Files {
			path := filepath.Join(dir, f.Path)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(path, []byte(f.Source), 0o644); err != nil {
				return err
			}
		}
	}
	issues, err := json.MarshalIndent(c.Issues, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "issues.json"), issues, 0o644); err != nil {
		return err
	}
	return WriteCommits(filepath.Join(dir, "commits"), c.CommitSources)
}

// commitPair is the on-disk form of one naming-fix commit.
type commitPair struct {
	Before string `json:"before"`
	After  string `json:"after"`
}

// WriteCommits writes textual before/after commit pairs.
func WriteCommits(dir string, pairs [][2]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	out := make([]commitPair, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, commitPair{Before: p[0], After: p[1]})
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "commits.json"), data, 0o644)
}

// ReadCommits loads commit pairs written by WriteCommits.
func ReadCommits(dir string) ([][2]string, error) {
	path := filepath.Join(dir, "commits.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read commits: %w", err)
	}
	var in []commitPair
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("parse commits %s: %w", path, err)
	}
	out := make([][2]string, 0, len(in))
	for _, p := range in {
		out = append(out, [2]string{p.Before, p.After})
	}
	return out, nil
}

// ReadIssues loads the ground-truth issues written by WriteTo.
func ReadIssues(path string) ([]*Issue, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read issues: %w", err)
	}
	var issues []*Issue
	if err := json.Unmarshal(data, &issues); err != nil {
		return nil, fmt.Errorf("parse issues %s: %w", path, err)
	}
	return issues, nil
}

// ParseCommitSources parses textual commit pairs into confusion-miner
// input for the given language. Pairs whose before or after side fails
// to parse are skipped; the second return value is how many were
// dropped, so callers can warn instead of quietly losing supervision
// signal.
func ParseCommitSources(lang ast.Language, pairs [][2]string) ([]confusion.Commit, int) {
	var out []confusion.Commit
	skipped := 0
	for _, p := range pairs {
		b, errB := parseLang(lang, p[0])
		a, errA := parseLang(lang, p[1])
		if errB != nil || errA != nil {
			skipped++
			continue
		}
		out = append(out, confusion.Commit{Before: b, After: a})
	}
	return out, skipped
}
