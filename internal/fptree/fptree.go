// Package fptree implements the frequent-pattern tree used by the name
// pattern mining algorithm (§3.3, Fig. 3). Items are interned name path
// ids; each tree node stores an occurrence count and an isLast flag marking
// the end of at least one inserted transaction.
//
// Nodes live in a single arena ([]Node slab addressed by int32 ids) rather
// than as individually allocated heap objects: children are item-sorted
// index slices instead of per-node maps, so growing the tree costs one
// amortized slab append per new node, traversal is cache-friendly, and the
// per-node map overhead of the pointer-based layout is gone. Construction
// can be sharded across workers by the first (highest-frequency) item of
// each transaction — see BuildSharded — because transactions with distinct
// first items occupy disjoint subtrees under the root.
package fptree

import (
	"fmt"
	"sort"
	"strings"

	"namer/internal/parallel"
)

// Tree is an FP tree over integer items. The zero value is not usable;
// call New.
type Tree struct {
	nodes []Node // nodes[0] is the root; children index into this slab
}

// Node is one FP-tree node, stored inline in the tree's arena. Node
// pointers handed out by Walk/Child/Children are valid only until the next
// insertion (the slab may move when it grows).
type Node struct {
	Item     int32 // -1 at the root
	Count    int32
	IsLast   bool
	children []int32 // child node ids, ordered by the child's Item
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{nodes: []Node{{Item: -1}}}
}

// Update inserts one transaction (a pre-sorted item list), incrementing
// counts along its path and marking the final node as a transaction end.
// Empty transactions are ignored.
func (t *Tree) Update(items []int) {
	if len(items) == 0 {
		return
	}
	cur := int32(0)
	for _, it := range items {
		cur = t.ensureChild(cur, int32(it))
		t.nodes[cur].Count++
	}
	t.nodes[cur].IsLast = true
}

// Add is Update for the int32 item representation used by the mining
// pipeline's flat transaction buffers.
func (t *Tree) Add(items []int32) {
	if len(items) == 0 {
		return
	}
	cur := int32(0)
	for _, it := range items {
		cur = t.ensureChild(cur, it)
		t.nodes[cur].Count++
	}
	t.nodes[cur].IsLast = true
}

// ensureChild returns the id of node id's child with the given item,
// appending a fresh node to the arena (and splicing its id into the
// item-sorted children slice) if absent.
func (t *Tree) ensureChild(id, item int32) int32 {
	kids := t.nodes[id].children
	lo, hi := 0, len(kids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.nodes[kids[mid]].Item < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(kids) && t.nodes[kids[lo]].Item == item {
		return kids[lo]
	}
	c := int32(len(t.nodes))
	t.nodes = append(t.nodes, Node{Item: item})
	kids = append(kids, 0)
	copy(kids[lo+1:], kids[lo:])
	kids[lo] = c
	t.nodes[id].children = kids
	return c
}

// Size returns the number of nodes (excluding the root).
func (t *Tree) Size() int { return len(t.nodes) - 1 }

// Root returns the root node (Item == -1).
func (t *Tree) Root() *Node { return &t.nodes[0] }

// Children returns the node's children ordered by item id. The slice is
// freshly allocated; the children index slice itself is kept sorted by
// construction, so no per-call sorting happens.
func (t *Tree) Children(n *Node) []*Node {
	out := make([]*Node, len(n.children))
	for i, c := range n.children {
		out[i] = &t.nodes[c]
	}
	return out
}

// Child returns the node's child with the given item, or nil.
func (t *Tree) Child(n *Node, item int) *Node {
	kids := n.children
	lo, hi := 0, len(kids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.nodes[kids[mid]].Item < int32(item) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(kids) && t.nodes[kids[lo]].Item == int32(item) {
		return &t.nodes[kids[lo]]
	}
	return nil
}

// Walk visits every node except the root in depth-first, item-sorted order,
// passing the item stack from the root to the node. The callback must not
// insert into the tree (the arena may move).
func (t *Tree) Walk(fn func(n *Node, stack []int)) {
	stack := make([]int, 0, 32)
	var rec func(id int32)
	rec = func(id int32) {
		for _, c := range t.nodes[id].children {
			n := &t.nodes[c]
			stack = append(stack, int(n.Item))
			fn(n, stack)
			rec(c)
			stack = stack[:len(stack)-1]
		}
	}
	rec(0)
}

// Canonical returns a structure-determined serialization of the tree
// (item stacks, counts, IsLast flags in Walk order). Two trees over the
// same transaction multiset serialize identically regardless of arena
// layout or construction schedule, so it is the equality notion used by
// the sharded-build determinism tests.
func (t *Tree) Canonical() string {
	var b strings.Builder
	t.Walk(func(n *Node, stack []int) {
		fmt.Fprintf(&b, "%v:%d:%t\n", stack, n.Count, n.IsLast)
	})
	return b.String()
}

// Merge folds other into t: counts of shared prefixes are summed, IsLast
// flags are OR-ed, and missing branches are copied. It is the
// deterministic count-merge used by the map/reduce mining driver to fold
// per-shard trees on the reduce side (and the fallback for combining
// trees whose transactions straddle BuildSharded's item-disjoint shards).
func (t *Tree) Merge(other *Tree) {
	t.MergeMapped(other, nil)
}

// MergeMapped is Merge with the source tree's items translated through
// mapItem as they are copied (nil means identity). The mining driver uses
// it to fold shard trees whose items were interned locally: each shard's
// dense ids are remapped into the reduce-side interner on the way in, so
// shards never need to agree on id assignment up front. mapItem must be
// injective over the source tree's items, which any interner remap is.
//
// The traversal keeps an explicit stack instead of recursing: merge depth
// equals the longest transaction chain in the source tree, and
// real-corpus statements can make that pathological — this is the reduce
// phase's hot path, fed trees from arbitrary shards, so it must not be
// able to overflow the goroutine stack.
func (t *Tree) MergeMapped(other *Tree, mapItem func(int32) int32) {
	type frame struct{ dst, src int32 }
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{0, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sc := range other.nodes[f.src].children {
			sn := other.nodes[sc]
			item := sn.Item
			if mapItem != nil {
				item = mapItem(item)
			}
			dc := t.ensureChild(f.dst, item)
			t.nodes[dc].Count += sn.Count
			if sn.IsLast {
				t.nodes[dc].IsLast = true
			}
			stack = append(stack, frame{dc, sc})
		}
	}
}

// Transactions is a flat, append-only buffer of item lists: one backing
// slice for all items plus an offset table, so accumulating millions of
// transactions costs amortized-zero allocations per transaction and the
// whole set can be scanned by concurrent shard builders without copying.
type Transactions struct {
	items []int32
	off   []int
}

// NewTransactions returns an empty buffer.
func NewTransactions() *Transactions {
	return &Transactions{off: []int{0}}
}

// Push appends a copy of one transaction. Empty transactions are ignored,
// matching Update.
func (x *Transactions) Push(items []int32) {
	if len(items) == 0 {
		return
	}
	x.items = append(x.items, items...)
	x.off = append(x.off, len(x.items))
}

// Len returns the number of pushed transactions.
func (x *Transactions) Len() int { return len(x.off) - 1 }

// At returns the i-th transaction as a view into the buffer.
func (x *Transactions) At(i int) []int32 { return x.items[x.off[i]:x.off[i+1]] }

// Build grows a tree serially from the buffered transactions in push
// order — the reference schedule that BuildSharded must reproduce.
func Build(txs *Transactions) *Tree {
	t := New()
	for i, n := 0, txs.Len(); i < n; i++ {
		t.Add(txs.At(i))
	}
	return t
}

// BuildSharded builds the same canonical tree as Build using `workers`
// goroutines. Transactions are sharded by their first item (the
// highest-frequency item under FP ordering): first item f goes to shard
// f mod workers, so every shard owns a disjoint set of root-child
// subtrees and workers never contend. Each worker scans the buffer in
// push order and inserts only its own shard's transactions, making every
// per-shard tree independent of goroutine scheduling; the shard trees are
// then stitched under one root in shard order. Canonical form is
// byte-identical to Build at any worker count.
func BuildSharded(txs *Transactions, workers int) *Tree {
	n := txs.Len()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return Build(txs)
	}
	parts := parallel.Map(workers, workers, func(shard int) *Tree {
		t := New()
		for i := 0; i < n; i++ {
			tx := txs.At(i)
			if int(tx[0])%workers == shard {
				t.Add(tx)
			}
		}
		return t
	})
	return stitchDisjoint(parts)
}

// stitchDisjoint concatenates shard trees whose root-child item sets are
// pairwise disjoint into one arena: each shard's nodes are appended with
// their child indices rebased, its root children attach under the common
// root, and the root's children are re-sorted by item once at the end.
// The parts are consumed (their child slices are rebased in place).
func stitchDisjoint(parts []*Tree) *Tree {
	total := 1
	for _, p := range parts {
		total += p.Size()
	}
	out := &Tree{nodes: make([]Node, 1, total)}
	out.nodes[0] = Node{Item: -1}
	for _, p := range parts {
		if p.Size() == 0 {
			continue
		}
		// Shard node j (j >= 1, the root is dropped) lands at base + j.
		base := int32(len(out.nodes)) - 1
		for _, c := range p.nodes[0].children {
			out.nodes[0].children = append(out.nodes[0].children, base+c)
		}
		for _, n := range p.nodes[1:] {
			for i := range n.children {
				n.children[i] += base
			}
			out.nodes = append(out.nodes, n)
		}
	}
	root := &out.nodes[0]
	sort.Slice(root.children, func(i, j int) bool {
		return out.nodes[root.children[i]].Item < out.nodes[root.children[j]].Item
	})
	return out
}
