// Package fptree implements the frequent-pattern tree used by the name
// pattern mining algorithm (§3.3, Fig. 3). Items are interned name path
// ids; each tree node stores an occurrence count and an isLast flag marking
// the end of at least one inserted transaction.
package fptree

import "sort"

// Tree is an FP tree over integer items.
type Tree struct {
	Root *Node
	size int
}

// Node is one FP-tree node.
type Node struct {
	Item     int // -1 at the root
	Count    int
	IsLast   bool
	children map[int]*Node
	sorted   []*Node // item-ordered child cache, invalidated by Update
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{Root: &Node{Item: -1, children: make(map[int]*Node)}}
}

// Update inserts one transaction (a pre-sorted item list), incrementing
// counts along its path and marking the final node as a transaction end.
// Empty transactions are ignored.
func (t *Tree) Update(items []int) {
	if len(items) == 0 {
		return
	}
	n := t.Root
	for _, it := range items {
		c, ok := n.children[it]
		if !ok {
			c = &Node{Item: it, children: make(map[int]*Node)}
			n.children[it] = c
			n.sorted = nil // new child invalidates the ordered cache
			t.size++
		}
		c.Count++
		n = c
	}
	n.IsLast = true
}

// Size returns the number of nodes (excluding the root).
func (t *Tree) Size() int { return t.size }

// Children returns the node's children ordered by item id, for
// deterministic traversal. The ordering is computed once and cached until
// the next Update adds a child under this node, so repeated Walks (pattern
// generation visits every node) do not re-sort the tree.
func (n *Node) Children() []*Node {
	if n.sorted != nil && len(n.sorted) == len(n.children) {
		return n.sorted
	}
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Item < out[j].Item })
	n.sorted = out
	return out
}

// Child returns the child with the given item, or nil.
func (n *Node) Child(item int) *Node { return n.children[item] }

// Walk visits every node except the root in depth-first order, passing the
// item stack from the root to the node.
func (t *Tree) Walk(fn func(n *Node, stack []int)) {
	var stack []int
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children() {
			stack = append(stack, c.Item)
			fn(c, stack)
			rec(c)
			stack = stack[:len(stack)-1]
		}
	}
	rec(t.Root)
}
