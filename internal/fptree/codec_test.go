package fptree

import (
	"math/rand"
	"testing"
)

// randomTree builds a tree from random transactions, returning it.
func randomTree(seed int64, txs, maxLen, maxItem int) *Tree {
	rng := rand.New(rand.NewSource(seed))
	t := New()
	for i := 0; i < txs; i++ {
		n := 1 + rng.Intn(maxLen)
		items := make([]int, n)
		for j := range items {
			items[j] = rng.Intn(maxItem)
		}
		t.Update(items)
	}
	return t
}

func TestTreeCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		orig := randomTree(seed, 100, 8, 30)
		data := EncodeTree(orig)
		got, err := DecodeTree(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if got.Canonical() != orig.Canonical() {
			t.Fatalf("seed %d: round trip changed the tree", seed)
		}
	}
}

func TestTreeCodecEmptyTree(t *testing.T) {
	got, err := DecodeTree(EncodeTree(New()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 {
		t.Fatalf("Size = %d, want 0", got.Size())
	}
}

// The encoding must be canonical: equal trees built on different
// schedules (serial vs sharded arenas) serialize to identical bytes.
func TestTreeCodecCanonicalAcrossBuilds(t *testing.T) {
	txs := NewTransactions()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(6)
		items := make([]int32, n)
		for j := range items {
			items[j] = int32(rng.Intn(20))
		}
		txs.Push(items)
	}
	serial := EncodeTree(Build(txs))
	sharded := EncodeTree(BuildSharded(txs, 4))
	if string(serial) != string(sharded) {
		t.Fatal("serial and sharded builds of the same transactions serialize differently")
	}
}

// Every single-byte flip or truncation of a valid encoding must fail to
// decode or decode to a structurally valid tree — never panic.
func TestTreeCodecCorruptionNeverPanics(t *testing.T) {
	data := EncodeTree(randomTree(3, 50, 6, 15))
	for i := range data {
		for _, delta := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), data...)
			mut[i] ^= delta
			tr, err := DecodeTree(mut) // must not panic
			if err == nil && tr == nil {
				t.Fatal("nil tree with nil error")
			}
		}
		if _, err := DecodeTree(data[:i]); err == nil && i < len(data) {
			// Short prefixes may happen to decode (e.g. cutting trailing
			// garbage that was never valid); a full-prefix success is
			// only acceptable for the complete encoding.
			t.Fatalf("truncation to %d of %d bytes decoded successfully", i, len(data))
		}
	}
	if _, err := DecodeTree(nil); err == nil {
		t.Fatal("empty input decoded successfully")
	}
}

// Merge must handle chains as deep as the longest transaction without
// recursing: a 200k-deep chain would overflow a recursive merge's stack
// growth budget long before the arena does.
func TestMergeDeepChain(t *testing.T) {
	const depth = 200_000
	chain := make([]int, depth)
	for i := range chain {
		chain[i] = i
	}
	a, b := New(), New()
	a.Update(chain)
	b.Update(chain)
	a.Merge(b)
	if a.Size() != depth {
		t.Fatalf("Size = %d, want %d", a.Size(), depth)
	}
	// Counts along the chain doubled.
	n := a.Root()
	for i := 0; i < 10; i++ {
		n = a.Child(n, i)
		if n == nil || n.Count != 2 {
			t.Fatalf("depth %d: count %v, want 2", i, n)
		}
	}
}

func TestMergeEquivalentToCombinedBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	all, left, right := New(), New(), New()
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(7)
		items := make([]int, n)
		for j := range items {
			items[j] = rng.Intn(25)
		}
		all.Update(items)
		if i%2 == 0 {
			left.Update(items)
		} else {
			right.Update(items)
		}
	}
	left.Merge(right)
	if left.Canonical() != all.Canonical() {
		t.Fatal("merged halves differ from the combined build")
	}
}

// MergeMapped with an injective remap must equal building the remapped
// transactions directly.
func TestMergeMappedRemapsItems(t *testing.T) {
	src, want, dst := New(), New(), New()
	txs := [][]int{{0, 1, 2}, {0, 2}, {1}, {0, 1, 2, 3}}
	remap := []int32{10, 5, 7, 2}
	for _, tx := range txs {
		src.Update(tx)
		mapped := make([]int32, len(tx))
		for i, it := range tx {
			mapped[i] = remap[it]
		}
		// Build the expected tree with the same per-transaction item
		// order (MergeMapped preserves structure, it does not re-sort).
		want.Add(mapped)
	}
	dst.MergeMapped(src, func(i int32) int32 { return remap[i] })
	if dst.Canonical() != want.Canonical() {
		t.Fatalf("mapped merge differs:\n%s\nvs\n%s", dst.Canonical(), want.Canonical())
	}
}
