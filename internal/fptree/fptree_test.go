package fptree

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestUpdateAndCounts(t *testing.T) {
	tr := New()
	tr.Update([]int{1, 2})
	tr.Update([]int{1, 2})
	tr.Update([]int{1, 3})
	tr.Update(nil) // ignored

	n1 := tr.Child(tr.Root(), 1)
	if n1 == nil || n1.Count != 3 {
		t.Fatalf("node 1 count = %v", n1)
	}
	if n1.IsLast {
		t.Error("node 1 should not be a transaction end")
	}
	n2 := tr.Child(n1, 2)
	if n2 == nil || n2.Count != 2 || !n2.IsLast {
		t.Errorf("node 2 = %+v", n2)
	}
	n3 := tr.Child(n1, 3)
	if n3 == nil || n3.Count != 1 || !n3.IsLast {
		t.Errorf("node 3 = %+v", n3)
	}
	if tr.Child(n1, 9) != nil {
		t.Error("absent child should be nil")
	}
	if kids := tr.Children(n1); len(kids) != 2 || kids[0].Item != 2 || kids[1].Item != 3 {
		t.Errorf("Children(n1) = %v", kids)
	}
	if tr.Size() != 3 {
		t.Errorf("Size = %d, want 3", tr.Size())
	}
}

func TestWalkOrderAndStacks(t *testing.T) {
	tr := New()
	tr.Update([]int{1, 3})
	tr.Update([]int{1, 2})
	tr.Update([]int{4})
	var stacks [][]int
	tr.Walk(func(n *Node, stack []int) {
		cp := append([]int(nil), stack...)
		stacks = append(stacks, cp)
	})
	want := [][]int{{1}, {1, 2}, {1, 3}, {4}}
	if !reflect.DeepEqual(stacks, want) {
		t.Errorf("stacks = %v, want %v", stacks, want)
	}
}

// Property: the count of any node equals the number of inserted
// transactions having that node's path as a prefix.
func TestCountsMatchPrefixOccurrences(t *testing.T) {
	f := func(raw [][]uint8) bool {
		tr := New()
		var txs [][]int
		for _, r := range raw {
			// Dedup and bound items to keep transactions well-formed.
			seen := map[int]bool{}
			var tx []int
			for _, b := range r {
				it := int(b % 6)
				if !seen[it] {
					seen[it] = true
					tx = append(tx, it)
				}
			}
			if len(tx) == 0 {
				continue
			}
			txs = append(txs, tx)
			tr.Update(tx)
		}
		okAll := true
		tr.Walk(func(n *Node, stack []int) {
			count := 0
			for _, tx := range txs {
				if len(tx) >= len(stack) {
					match := true
					for i := range stack {
						if tx[i] != stack[i] {
							match = false
							break
						}
					}
					if match {
						count++
					}
				}
			}
			if count != int(n.Count) {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
