package fptree

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomTransactions generates a seeded transaction set with items drawn
// from a small universe (to force prefix sharing and shard collisions) and
// per-transaction deduplication, mirroring the miner's item lists.
func randomTransactions(seed int64, count, universe int) *Transactions {
	rng := rand.New(rand.NewSource(seed))
	txs := NewTransactions()
	scratch := make([]int32, 0, 12)
	for i := 0; i < count; i++ {
		n := rng.Intn(8) // empty transactions are exercised too
		seen := map[int32]bool{}
		scratch = scratch[:0]
		for j := 0; j < n; j++ {
			it := int32(rng.Intn(universe))
			if !seen[it] {
				seen[it] = true
				scratch = append(scratch, it)
			}
		}
		txs.Push(scratch)
	}
	return txs
}

// Property: BuildSharded produces a tree whose canonical serialization
// (counts, IsLast flags, child order) is byte-identical to the serial
// reference Build, for any seed and any worker count.
func TestBuildShardedMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		txs := randomTransactions(seed, 300, 9)
		want := Build(txs).Canonical()
		for _, workers := range []int{1, 2, 3, 4, 7, 16, 1000} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				got := BuildSharded(txs, workers)
				if c := got.Canonical(); c != want {
					t.Errorf("canonical trees differ:\nserial:\n%s\nsharded:\n%s", want, c)
				}
			})
		}
	}
}

// Property: the serial incremental Update path and the buffered Build path
// agree, and node counts match.
func TestBuildMatchesUpdate(t *testing.T) {
	txs := randomTransactions(99, 200, 6)
	incr := New()
	for i := 0; i < txs.Len(); i++ {
		tx := txs.At(i)
		items := make([]int, len(tx))
		for j, it := range tx {
			items[j] = int(it)
		}
		incr.Update(items)
	}
	built := Build(txs)
	if incr.Canonical() != built.Canonical() {
		t.Error("Update-grown and Build-grown trees differ")
	}
	if incr.Size() != built.Size() {
		t.Errorf("sizes differ: %d vs %d", incr.Size(), built.Size())
	}
}

// Property: Merge is the correct count-merge fallback — building per-group
// trees over an arbitrary (item-straddling) partition of the transactions
// and folding them with Merge reproduces the serial tree exactly.
func TestMergeStraddlingShards(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		txs := randomTransactions(seed, 250, 7)
		want := Build(txs).Canonical()
		for _, groups := range []int{2, 3, 5} {
			// Round-robin by transaction index: nearly every item's
			// subtree is split across groups, the worst case for merging.
			parts := make([]*Tree, groups)
			for g := range parts {
				parts[g] = New()
			}
			for i := 0; i < txs.Len(); i++ {
				parts[i%groups].Add(txs.At(i))
			}
			merged := New()
			for _, p := range parts {
				merged.Merge(p)
			}
			if c := merged.Canonical(); c != want {
				t.Errorf("seed %d groups %d: merged tree differs from serial:\n%s\nvs\n%s",
					seed, groups, c, want)
			}
		}
	}
}

// Transactions buffer bookkeeping: Len/At views match what was pushed,
// empties are dropped.
func TestTransactionsBuffer(t *testing.T) {
	txs := NewTransactions()
	txs.Push([]int32{3, 1})
	txs.Push(nil)
	txs.Push([]int32{2})
	if txs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", txs.Len())
	}
	if a := txs.At(0); len(a) != 2 || a[0] != 3 || a[1] != 1 {
		t.Errorf("At(0) = %v", a)
	}
	if b := txs.At(1); len(b) != 1 || b[0] != 2 {
		t.Errorf("At(1) = %v", b)
	}
}
