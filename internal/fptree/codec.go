package fptree

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Tree codec: a compact binary serialization of an FP tree, used by the
// map/reduce mining driver to checkpoint per-shard subtrees on disk
// between the map and reduce phases. The layout is a preorder walk with
// per-node child counts (all integers unsigned varints):
//
//	nodes      non-root node count
//	rootKids   child count of the root
//	then, in preorder with children in ascending item order, per node:
//	  item, count, flags (bit 0 = IsLast), childCount
//
// The encoding is canonical: it depends only on the tree's logical
// structure (Canonical form), never on arena layout or insertion order,
// so two equal trees serialize to identical bytes. The decoder validates
// every count and the ascending-sibling-item invariant and never panics
// on corrupt input; integrity (checksums) is the containing checkpoint
// file's job.

// codec sanity bounds: a count above these limits indicates corruption
// and fails fast instead of attempting a giant allocation.
const (
	maxTreeNodes = 1 << 28
)

// EncodeTree serializes the tree. The inverse is DecodeTree.
func EncodeTree(t *Tree) []byte {
	var scratch [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 8+8*len(t.nodes))
	uvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}
	uvarint(uint64(t.Size()))
	uvarint(uint64(len(t.nodes[0].children)))
	// Preorder with an explicit stack: children are pushed in reverse so
	// they pop in ascending item order, matching Walk.
	stack := make([]int32, 0, 64)
	kids := t.nodes[0].children
	for i := len(kids) - 1; i >= 0; i-- {
		stack = append(stack, kids[i])
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[id]
		uvarint(uint64(n.Item))
		uvarint(uint64(n.Count))
		flags := byte(0)
		if n.IsLast {
			flags = 1
		}
		buf = append(buf, flags)
		uvarint(uint64(len(n.children)))
		for i := len(n.children) - 1; i >= 0; i-- {
			stack = append(stack, n.children[i])
		}
	}
	return buf
}

// DecodeTree parses a tree serialized by EncodeTree, validating node
// counts, value ranges, and the ascending-sibling-item invariant.
// Corrupt or truncated input returns a descriptive error, never panics.
func DecodeTree(data []byte) (*Tree, error) {
	pos := 0
	uvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("fptree: truncated %s at byte %d", what, pos)
		}
		pos += n
		return v, nil
	}
	total, err := uvarint("node count")
	if err != nil {
		return nil, err
	}
	if total > maxTreeNodes || total > uint64(len(data)) {
		return nil, fmt.Errorf("fptree: implausible node count %d for %d bytes", total, len(data))
	}
	rootKids, err := uvarint("root child count")
	if err != nil {
		return nil, err
	}
	if rootKids > total {
		return nil, fmt.Errorf("fptree: root child count %d exceeds node count %d", rootKids, total)
	}
	t := &Tree{nodes: make([]Node, 1, total+1)}
	t.nodes[0] = Node{Item: -1}

	// frame tracks one partially-read node: how many of its children are
	// still to come and the item of the last child seen (for the
	// ascending-sibling check).
	type frame struct {
		id        int32
		remaining uint64
		lastItem  int64
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{id: 0, remaining: rootKids, lastItem: -1})
	read := uint64(0)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.remaining == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		item, err := uvarint("item")
		if err != nil {
			return nil, err
		}
		if item > math.MaxInt32 {
			return nil, fmt.Errorf("fptree: item %d out of int32 range at byte %d", item, pos)
		}
		if int64(item) <= top.lastItem {
			return nil, fmt.Errorf("fptree: sibling items not ascending (%d after %d) at byte %d",
				item, top.lastItem, pos)
		}
		count, err := uvarint("count")
		if err != nil {
			return nil, err
		}
		if count > math.MaxInt32 {
			return nil, fmt.Errorf("fptree: count %d out of int32 range at byte %d", count, pos)
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("fptree: truncated flags at byte %d", pos)
		}
		flags := data[pos]
		pos++
		if flags > 1 {
			return nil, fmt.Errorf("fptree: invalid flags 0x%x at byte %d", flags, pos-1)
		}
		kids, err := uvarint("child count")
		if err != nil {
			return nil, err
		}
		read++
		if read > total {
			return nil, fmt.Errorf("fptree: more than the declared %d nodes", total)
		}
		if kids > total-read {
			return nil, fmt.Errorf("fptree: child count %d exceeds remaining nodes at byte %d", kids, pos)
		}
		id := int32(len(t.nodes))
		t.nodes = append(t.nodes, Node{Item: int32(item), Count: int32(count), IsLast: flags == 1})
		top.lastItem = int64(item)
		top.remaining--
		// Children arrive in ascending item order, so plain appends keep
		// the parent's children index sorted by construction.
		t.nodes[top.id].children = append(t.nodes[top.id].children, id)
		if kids > 0 {
			stack = append(stack, frame{id: id, remaining: kids, lastItem: -1})
		}
	}
	if read != total {
		return nil, fmt.Errorf("fptree: declared %d nodes, found %d", total, read)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("fptree: %d trailing bytes after tree", len(data)-pos)
	}
	return t, nil
}
