// Package subtoken splits identifier names into subtokens following the
// standard naming conventions the paper relies on (camelCase, PascalCase,
// snake_case, SCREAMING_SNAKE, digit runs, acronym runs). Splitting is what
// lets Namer detect issues at subtoken granularity: assertTrue becomes
// [assert True], rotate_angle becomes [rotate angle].
package subtoken

import "unicode"

// Split breaks an identifier into subtokens. The original casing of each
// subtoken is preserved (assertTrue -> ["assert", "True"]) because name
// patterns reason over the literal subtokens.
//
// Rules, applied in order while scanning:
//   - '_', '$' and other non-alphanumeric runes are separators and are
//     dropped;
//   - a lower-to-upper transition starts a new subtoken (camelCase);
//   - an upper-upper-lower transition splits before the last upper rune so
//     acronyms stay whole (HTTPServer -> ["HTTP", "Server"]);
//   - letter<->digit transitions start a new subtoken (utf8 -> ["utf","8"]).
//
// The empty string yields nil. An identifier with no splittable structure
// yields a single subtoken equal to itself.
func Split(name string) []string {
	if name == "" {
		return nil
	}
	runes := []rune(name)
	var out []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			out = append(out, string(cur))
			cur = cur[:0]
		}
	}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch {
		case !unicode.IsLetter(r) && !unicode.IsDigit(r):
			flush()
		case len(cur) == 0:
			cur = append(cur, r)
		default:
			prev := cur[len(cur)-1]
			switch {
			case unicode.IsDigit(r) != unicode.IsDigit(prev):
				flush()
				cur = append(cur, r)
			case unicode.IsUpper(r) && unicode.IsLower(prev):
				flush()
				cur = append(cur, r)
			case unicode.IsLower(r) && unicode.IsUpper(prev) && len(cur) > 1:
				// Acronym followed by a word: split before the last upper.
				last := cur[len(cur)-1]
				cur = cur[:len(cur)-1]
				flush()
				cur = append(cur, last, r)
			default:
				cur = append(cur, r)
			}
		}
	}
	flush()
	return out
}

// Count returns the number of subtokens Split would produce; it is the k of
// the NumST(k) nodes in the AST+ transformation.
func Count(name string) int { return len(Split(name)) }

// Join reassembles subtokens using the convention detected from the
// original identifier: snake_case if the original contained an underscore,
// otherwise camelCase with the first subtoken's casing preserved. It is
// used to render suggested fixes (replace one subtoken, re-join).
func Join(original string, subtokens []string) string {
	if len(subtokens) == 0 {
		return ""
	}
	snake := false
	for _, r := range original {
		if r == '_' {
			snake = true
			break
		}
	}
	if snake {
		s := subtokens[0]
		for _, t := range subtokens[1:] {
			s += "_" + t
		}
		return s
	}
	s := subtokens[0]
	for _, t := range subtokens[1:] {
		s += capitalize(t)
	}
	return s
}

func capitalize(s string) string {
	r := []rune(s)
	if len(r) == 0 {
		return s
	}
	r[0] = unicode.ToUpper(r[0])
	return string(r)
}
