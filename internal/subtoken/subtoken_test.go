package subtoken

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSplit(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"self", []string{"self"}},
		{"assertTrue", []string{"assert", "True"}},
		{"assertEqual", []string{"assert", "Equal"}},
		{"rotate_angle", []string{"rotate", "angle"}},
		{"snake_case_name", []string{"snake", "case", "name"}},
		{"camelCaseName", []string{"camel", "Case", "Name"}},
		{"PascalCase", []string{"Pascal", "Case"}},
		{"HTTPServer", []string{"HTTP", "Server"}},
		{"parseURL", []string{"parse", "URL"}},
		{"utf8", []string{"utf", "8"}},
		{"base64Encode", []string{"base", "64", "Encode"}},
		{"SCREAMING_SNAKE", []string{"SCREAMING", "SNAKE"}},
		{"__dunder__", []string{"dunder"}},
		{"_private", []string{"private"}},
		{"a", []string{"a"}},
		{"A", []string{"A"}},
		{"x2", []string{"x", "2"}},
		{"$jquery", []string{"jquery"}},
		{"num_or_process", []string{"num", "or", "process"}},
		{"publickKey", []string{"publick", "Key"}},
		{"progDialog", []string{"prog", "Dialog"}},
		{"getStackTrace", []string{"get", "Stack", "Trace"}},
		{"___", nil},
		{"ABClass", []string{"AB", "Class"}},
	}
	for _, tt := range tests {
		if got := Split(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Split(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestCount(t *testing.T) {
	if got := Count("assertTrue"); got != 2 {
		t.Errorf("Count(assertTrue) = %d, want 2", got)
	}
	if got := Count("self"); got != 1 {
		t.Errorf("Count(self) = %d, want 1", got)
	}
	if got := Count(""); got != 0 {
		t.Errorf("Count(\"\") = %d, want 0", got)
	}
}

func TestJoin(t *testing.T) {
	tests := []struct {
		orig string
		subs []string
		want string
	}{
		{"assertTrue", []string{"assert", "Equal"}, "assertEqual"},
		{"rotate_angle", []string{"rotate", "speed"}, "rotate_speed"},
		{"num_or_process", []string{"num", "of", "process"}, "num_of_process"},
		{"progDialog", []string{"progress", "Dialog"}, "progressDialog"},
		{"x", []string{"y"}, "y"},
		{"x", nil, ""},
	}
	for _, tt := range tests {
		if got := Join(tt.orig, tt.subs); got != tt.want {
			t.Errorf("Join(%q, %v) = %q, want %q", tt.orig, tt.subs, got, tt.want)
		}
	}
}

// Property: splitting never produces empty subtokens and every subtoken's
// runes appear in the input in order.
func TestSplitProperties(t *testing.T) {
	f := func(s string) bool {
		subs := Split(s)
		for _, sub := range subs {
			if sub == "" {
				return false
			}
		}
		// Concatenated subtokens must be a subsequence of the input.
		joined := ""
		for _, sub := range subs {
			joined += sub
		}
		ri := []rune(s)
		rj := []rune(joined)
		i := 0
		for _, r := range rj {
			found := false
			for i < len(ri) {
				if ri[i] == r {
					found = true
					i++
					break
				}
				i++
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: splitting a snake_case join of clean lowercase words recovers
// the words.
func TestSplitJoinRoundTrip(t *testing.T) {
	words := [][]string{
		{"alpha"}, {"alpha", "beta"}, {"read", "file", "lines"},
		{"x", "y", "z"}, {"value"},
	}
	for _, ws := range words {
		snake := Join("has_underscore", ws)
		if got := Split(snake); !reflect.DeepEqual(got, ws) {
			t.Errorf("Split(Join snake %v) = %v", ws, got)
		}
	}
}
