package neural

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad checks the analytic gradient of a scalar-valued function
// against central finite differences.
func numericGrad(t *testing.T, name string, inputs []*Tensor, forward func(tape *Tape) *Tensor) {
	t.Helper()
	// Analytic.
	for _, in := range inputs {
		in.ZeroGrad()
	}
	tape := NewTape()
	loss := forward(tape)
	if loss.R != 1 || loss.C != 1 {
		t.Fatalf("%s: forward must return a scalar", name)
	}
	SeedGrad(loss)
	tape.Backward()
	analytic := make([][]float64, len(inputs))
	for i, in := range inputs {
		analytic[i] = append([]float64(nil), in.G...)
	}
	// Numeric.
	const eps = 1e-5
	for i, in := range inputs {
		for j := range in.W {
			orig := in.W[j]
			in.W[j] = orig + eps
			lp := forward(NewTape()).W[0]
			in.W[j] = orig - eps
			lm := forward(NewTape()).W[0]
			in.W[j] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - analytic[i][j]); diff > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s: input %d elem %d: numeric %g vs analytic %g",
					name, i, j, num, analytic[i][j])
			}
		}
	}
}

func randTensor(r, c int, rng *rand.Rand) *Tensor {
	t := NewTensor(r, c)
	for i := range t.W {
		t.W[i] = rng.NormFloat64()
	}
	return t
}

// sumAll reduces any tensor to a scalar for gradient checking.
func sumAll(tape *Tape, a *Tensor) *Tensor {
	ones := NewTensor(a.C, 1)
	for i := range ones.W {
		ones.W[i] = 1
	}
	col := tape.MatMul(a, ones) // R×1
	onesR := NewTensor(1, a.R)
	for i := range onesR.W {
		onesR.W[i] = 1
	}
	return tape.MatMul(onesR, col)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(3, 4, rng)
	b := randTensor(4, 2, rng)
	numericGrad(t, "matmul", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Mul(tp.MatMul(a, b), tp.MatMul(a, b)))
	})
}

func TestGradMatMulT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(3, 4, rng)
	b := randTensor(5, 4, rng)
	numericGrad(t, "matmulT", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Tanh(tp.MatMulT(a, b)))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(2, 5, rng)
	numericGrad(t, "sigmoid", []*Tensor{a}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Sigmoid(a))
	})
	numericGrad(t, "tanh", []*Tensor{a}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Tanh(a))
	})
	numericGrad(t, "relu", []*Tensor{a}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Mul(tp.ReLU(a), tp.ReLU(a)))
	})
	numericGrad(t, "oneminus", []*Tensor{a}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Mul(tp.OneMinus(a), a))
	})
}

func TestGradAddBiasAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randTensor(3, 4, rng)
	b := randTensor(1, 4, rng)
	numericGrad(t, "addbias", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Tanh(tp.AddBias(a, b)))
	})
	numericGrad(t, "scale", []*Tensor{a}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Scale(tp.Sigmoid(a), 2.5))
	})
}

func TestGradSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randTensor(3, 4, rng)
	w := randTensor(3, 4, rng) // weighting to break symmetry
	numericGrad(t, "softmaxrows", []*Tensor{a}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Mul(tp.SoftmaxRows(a), w))
	})
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randTensor(1, 6, rng)
	numericGrad(t, "sce", []*Tensor{a}, func(tp *Tape) *Tensor {
		return tp.SoftmaxCrossEntropy(a, 2)
	})
}

func TestGradRowsAndAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	emb := randTensor(5, 3, rng)
	numericGrad(t, "rows", []*Tensor{emb}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Tanh(tp.Rows(emb, []int{1, 3, 1})))
	})
	h := randTensor(4, 3, rng)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {3, 0}}
	numericGrad(t, "aggregate", []*Tensor{h}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Tanh(tp.Aggregate(h, edges)))
	})
}

func TestGradMaskScaledAndConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := randTensor(3, 3, rng)
	scalar := randTensor(1, 1, rng)
	mask := []float64{1, 0, 0, 0, 1, 0, 1, 0, 1}
	numericGrad(t, "maskscaled", []*Tensor{logits, scalar}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.SoftmaxRows(tp.AddMaskScaled(logits, mask, scalar)))
	})
	a := randTensor(2, 3, rng)
	b := randTensor(2, 2, rng)
	numericGrad(t, "concat", []*Tensor{a, b}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Tanh(tp.ConcatCols(a, b)))
	})
	numericGrad(t, "meanrows", []*Tensor{a}, func(tp *Tape) *Tensor {
		return sumAll(tp, tp.Tanh(tp.MeanRows(a)))
	})
}

func TestAdamConvergesOnRegression(t *testing.T) {
	// Fit y = 2x - 1 with a single linear unit.
	rng := rand.New(rand.NewSource(9))
	params := NewParams()
	w := params.New(1, 1, rng)
	b := params.NewZero(1, 1)
	for step := 0; step < 400; step++ {
		params.ZeroGrad()
		x := rng.NormFloat64()
		target := 2*x - 1
		tape := NewTape()
		xt := NewTensor(1, 1)
		xt.W[0] = x
		pred := tape.Add(tape.MatMul(xt, w), b)
		diff := NewTensor(1, 1)
		diff.W[0] = -target
		loss := tape.Mul(tape.Add(pred, diff), tape.Add(pred, diff))
		SeedGrad(loss)
		tape.Backward()
		params.AdamStep(0.05)
	}
	if math.Abs(w.W[0]-2) > 0.2 || math.Abs(b.W[0]+1) > 0.2 {
		t.Errorf("w=%.3f b=%.3f, want 2 and -1", w.W[0], b.W[0])
	}
}

func TestParamsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := NewParams()
	p.New(3, 4, rng)
	p.NewZero(1, 4)
	if p.Count() != 16 {
		t.Errorf("Count = %d, want 16", p.Count())
	}
}
