// Package neural is a small tape-based reverse-mode automatic
// differentiation library with the layers needed to reproduce the paper's
// deep-learning baselines (§5.6): embeddings, GRU cells for the GGNN, and
// relation-biased multi-head attention for Great, trained with Adam.
package neural

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix with a gradient buffer.
type Tensor struct {
	R, C int
	W    []float64 // values
	G    []float64 // gradients
}

// NewTensor returns a zero tensor.
func NewTensor(r, c int) *Tensor {
	return &Tensor{R: r, C: c, W: make([]float64, r*c), G: make([]float64, r*c)}
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.W[i*t.C+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.W[i*t.C+j] = v }

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.G {
		t.G[i] = 0
	}
}

// Params owns trainable tensors and their Adam state.
type Params struct {
	Tensors []*Tensor
	m, v    [][]float64
	step    int
}

// NewParams returns an empty parameter set.
func NewParams() *Params { return &Params{} }

// New allocates a trainable tensor with Xavier-style initialization.
func (p *Params) New(r, c int, rng *rand.Rand) *Tensor {
	t := NewTensor(r, c)
	scale := math.Sqrt(2.0 / float64(r+c))
	for i := range t.W {
		t.W[i] = rng.NormFloat64() * scale
	}
	p.register(t)
	return t
}

// NewZero allocates a trainable zero tensor (biases).
func (p *Params) NewZero(r, c int) *Tensor {
	t := NewTensor(r, c)
	p.register(t)
	return t
}

func (p *Params) register(t *Tensor) {
	p.Tensors = append(p.Tensors, t)
	p.m = append(p.m, make([]float64, len(t.W)))
	p.v = append(p.v, make([]float64, len(t.W)))
}

// ZeroGrad clears all parameter gradients.
func (p *Params) ZeroGrad() {
	for _, t := range p.Tensors {
		t.ZeroGrad()
	}
}

// AdamStep applies one Adam update with the given learning rate.
func (p *Params) AdamStep(lr float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
		clip  = 5.0
	)
	p.step++
	bc1 := 1 - math.Pow(beta1, float64(p.step))
	bc2 := 1 - math.Pow(beta2, float64(p.step))
	for k, t := range p.Tensors {
		for i, g := range t.G {
			if g > clip {
				g = clip
			} else if g < -clip {
				g = -clip
			}
			p.m[k][i] = beta1*p.m[k][i] + (1-beta1)*g
			p.v[k][i] = beta2*p.v[k][i] + (1-beta2)*g*g
			mHat := p.m[k][i] / bc1
			vHat := p.v[k][i] / bc2
			t.W[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
		}
	}
}

// Count returns the number of scalar parameters.
func (p *Params) Count() int {
	n := 0
	for _, t := range p.Tensors {
		n += len(t.W)
	}
	return n
}

// Tape records the forward computation and replays it backward.
type Tape struct {
	backward []func()
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Backward runs all recorded backward closures in reverse order. The
// caller seeds the loss gradient first (see SeedGrad).
func (t *Tape) Backward() {
	for i := len(t.backward) - 1; i >= 0; i-- {
		t.backward[i]()
	}
}

// SeedGrad sets the gradient of a scalar loss tensor to 1.
func SeedGrad(loss *Tensor) {
	if len(loss.G) > 0 {
		loss.G[0] = 1
	}
}

func (t *Tape) push(fn func()) { t.backward = append(t.backward, fn) }

func assertDims(cond bool, format string, args ...any) {
	if !cond {
		panic("neural: " + fmt.Sprintf(format, args...))
	}
}

// MatMul returns a × b.
func (t *Tape) MatMul(a, b *Tensor) *Tensor {
	assertDims(a.C == b.R, "MatMul %dx%d × %dx%d", a.R, a.C, b.R, b.C)
	out := NewTensor(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			av := a.W[i*a.C+k]
			if av == 0 {
				continue
			}
			for j := 0; j < b.C; j++ {
				out.W[i*out.C+j] += av * b.W[k*b.C+j]
			}
		}
	}
	t.push(func() {
		for i := 0; i < a.R; i++ {
			for j := 0; j < b.C; j++ {
				g := out.G[i*out.C+j]
				if g == 0 {
					continue
				}
				for k := 0; k < a.C; k++ {
					a.G[i*a.C+k] += g * b.W[k*b.C+j]
					b.G[k*b.C+j] += g * a.W[i*a.C+k]
				}
			}
		}
	})
	return out
}

// MatMulT returns a × bᵀ.
func (t *Tape) MatMulT(a, b *Tensor) *Tensor {
	assertDims(a.C == b.C, "MatMulT %dx%d × (%dx%d)ᵀ", a.R, a.C, b.R, b.C)
	out := NewTensor(a.R, b.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.R; j++ {
			s := 0.0
			for k := 0; k < a.C; k++ {
				s += a.W[i*a.C+k] * b.W[j*b.C+k]
			}
			out.W[i*out.C+j] = s
		}
	}
	t.push(func() {
		for i := 0; i < a.R; i++ {
			for j := 0; j < b.R; j++ {
				g := out.G[i*out.C+j]
				if g == 0 {
					continue
				}
				for k := 0; k < a.C; k++ {
					a.G[i*a.C+k] += g * b.W[j*b.C+k]
					b.G[j*b.C+k] += g * a.W[i*a.C+k]
				}
			}
		}
	})
	return out
}

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Tensor) *Tensor {
	assertDims(a.R == b.R && a.C == b.C, "Add shape mismatch")
	out := NewTensor(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] + b.W[i]
	}
	t.push(func() {
		for i := range out.G {
			a.G[i] += out.G[i]
			b.G[i] += out.G[i]
		}
	})
	return out
}

// AddBias adds a 1×C bias row to every row of a.
func (t *Tape) AddBias(a, bias *Tensor) *Tensor {
	assertDims(bias.R == 1 && bias.C == a.C, "AddBias shape mismatch")
	out := NewTensor(a.R, a.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.W[i*a.C+j] = a.W[i*a.C+j] + bias.W[j]
		}
	}
	t.push(func() {
		for i := 0; i < a.R; i++ {
			for j := 0; j < a.C; j++ {
				g := out.G[i*a.C+j]
				a.G[i*a.C+j] += g
				bias.G[j] += g
			}
		}
	})
	return out
}

// Mul returns the elementwise product.
func (t *Tape) Mul(a, b *Tensor) *Tensor {
	assertDims(a.R == b.R && a.C == b.C, "Mul shape mismatch")
	out := NewTensor(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] * b.W[i]
	}
	t.push(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * b.W[i]
			b.G[i] += out.G[i] * a.W[i]
		}
	})
	return out
}

// Scale returns a * s for a constant scalar.
func (t *Tape) Scale(a *Tensor, s float64) *Tensor {
	out := NewTensor(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] * s
	}
	t.push(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * s
		}
	})
	return out
}

// OneMinus returns 1 - a.
func (t *Tape) OneMinus(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	for i := range out.W {
		out.W[i] = 1 - a.W[i]
	}
	t.push(func() {
		for i := range out.G {
			a.G[i] -= out.G[i]
		}
	})
	return out
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	for i := range out.W {
		out.W[i] = 1 / (1 + math.Exp(-a.W[i]))
	}
	t.push(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * out.W[i] * (1 - out.W[i])
		}
	})
	return out
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	for i := range out.W {
		out.W[i] = math.Tanh(a.W[i])
	}
	t.push(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * (1 - out.W[i]*out.W[i])
		}
	})
	return out
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	for i := range out.W {
		if a.W[i] > 0 {
			out.W[i] = a.W[i]
		}
	}
	t.push(func() {
		for i := range out.G {
			if a.W[i] > 0 {
				a.G[i] += out.G[i]
			}
		}
	})
	return out
}

// Rows gathers rows of a by index (embedding lookup).
func (t *Tape) Rows(a *Tensor, idx []int) *Tensor {
	out := NewTensor(len(idx), a.C)
	for i, id := range idx {
		assertDims(id >= 0 && id < a.R, "Rows index %d out of %d", id, a.R)
		copy(out.W[i*a.C:(i+1)*a.C], a.W[id*a.C:(id+1)*a.C])
	}
	t.push(func() {
		for i, id := range idx {
			for j := 0; j < a.C; j++ {
				a.G[id*a.C+j] += out.G[i*a.C+j]
			}
		}
	})
	return out
}

// Aggregate sums source rows of h into destination rows over directed
// edges (message passing). Output row d receives the sum of h rows s for
// every edge (s, d).
func (t *Tape) Aggregate(h *Tensor, edges [][2]int) *Tensor {
	out := NewTensor(h.R, h.C)
	for _, e := range edges {
		s, d := e[0], e[1]
		for j := 0; j < h.C; j++ {
			out.W[d*h.C+j] += h.W[s*h.C+j]
		}
	}
	t.push(func() {
		for _, e := range edges {
			s, d := e[0], e[1]
			for j := 0; j < h.C; j++ {
				h.G[s*h.C+j] += out.G[d*h.C+j]
			}
		}
	})
	return out
}

// AddMaskScaled returns logits + scalar·mask where mask is a constant
// matrix (flattened, same shape) and scalar is a trainable 1×1 tensor —
// the relation-bias term of Great's attention.
func (t *Tape) AddMaskScaled(logits *Tensor, mask []float64, scalar *Tensor) *Tensor {
	assertDims(len(mask) == len(logits.W), "AddMaskScaled mask size")
	assertDims(scalar.R == 1 && scalar.C == 1, "AddMaskScaled scalar shape")
	out := NewTensor(logits.R, logits.C)
	s := scalar.W[0]
	for i := range out.W {
		out.W[i] = logits.W[i] + s*mask[i]
	}
	t.push(func() {
		for i := range out.G {
			logits.G[i] += out.G[i]
			scalar.G[0] += out.G[i] * mask[i]
		}
	})
	return out
}

// SoftmaxRows applies a row-wise softmax.
func (t *Tape) SoftmaxRows(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	for i := 0; i < a.R; i++ {
		maxV := math.Inf(-1)
		for j := 0; j < a.C; j++ {
			if a.W[i*a.C+j] > maxV {
				maxV = a.W[i*a.C+j]
			}
		}
		sum := 0.0
		for j := 0; j < a.C; j++ {
			e := math.Exp(a.W[i*a.C+j] - maxV)
			out.W[i*a.C+j] = e
			sum += e
		}
		for j := 0; j < a.C; j++ {
			out.W[i*a.C+j] /= sum
		}
	}
	t.push(func() {
		for i := 0; i < a.R; i++ {
			dot := 0.0
			for j := 0; j < a.C; j++ {
				dot += out.G[i*a.C+j] * out.W[i*a.C+j]
			}
			for j := 0; j < a.C; j++ {
				a.G[i*a.C+j] += out.W[i*a.C+j] * (out.G[i*a.C+j] - dot)
			}
		}
	})
	return out
}

// ConcatCols concatenates a and b column-wise (same row count).
func (t *Tape) ConcatCols(a, b *Tensor) *Tensor {
	assertDims(a.R == b.R, "ConcatCols row mismatch")
	out := NewTensor(a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		copy(out.W[i*out.C:], a.W[i*a.C:(i+1)*a.C])
		copy(out.W[i*out.C+a.C:], b.W[i*b.C:(i+1)*b.C])
	}
	t.push(func() {
		for i := 0; i < a.R; i++ {
			for j := 0; j < a.C; j++ {
				a.G[i*a.C+j] += out.G[i*out.C+j]
			}
			for j := 0; j < b.C; j++ {
				b.G[i*b.C+j] += out.G[i*out.C+a.C+j]
			}
		}
	})
	return out
}

// SoftmaxCrossEntropy treats a 1×K tensor as logits and returns the scalar
// cross-entropy loss against the target index.
func (t *Tape) SoftmaxCrossEntropy(logits *Tensor, target int) *Tensor {
	assertDims(logits.R == 1, "SoftmaxCrossEntropy needs a row vector")
	assertDims(target >= 0 && target < logits.C, "target out of range")
	probs := make([]float64, logits.C)
	maxV := math.Inf(-1)
	for _, v := range logits.W {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for j, v := range logits.W {
		probs[j] = math.Exp(v - maxV)
		sum += probs[j]
	}
	for j := range probs {
		probs[j] /= sum
	}
	out := NewTensor(1, 1)
	out.W[0] = -math.Log(probs[target] + 1e-12)
	t.push(func() {
		g := out.G[0]
		for j := range probs {
			d := probs[j]
			if j == target {
				d -= 1
			}
			logits.G[j] += g * d
		}
	})
	return out
}

// AddScalar returns a + b for two 1×1 tensors.
func (t *Tape) AddScalar(a, b *Tensor) *Tensor { return t.Add(a, b) }

// MeanRows returns the 1×C mean of all rows.
func (t *Tape) MeanRows(a *Tensor) *Tensor {
	out := NewTensor(1, a.C)
	inv := 1.0 / float64(a.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.W[j] += a.W[i*a.C+j] * inv
		}
	}
	t.push(func() {
		for i := 0; i < a.R; i++ {
			for j := 0; j < a.C; j++ {
				a.G[i*a.C+j] += out.G[j] * inv
			}
		}
	})
	return out
}
