package textutil

import (
	"testing"
	"testing/quick"
)

func TestEditDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"True", "Equal", 4},
		{"or", "of", 1},
		{"publick", "public", 1},
		{"por", "port", 1},
		{"args", "kwargs", 2},
		{"same", "same", 0},
		{"N", "np", 2},
	}
	for _, tt := range tests {
		if got := EditDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	// Symmetry.
	sym := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error("symmetry:", err)
	}
	// Identity of indiscernibles.
	ident := func(a string) bool { return EditDistance(a, a) == 0 }
	if err := quick.Check(ident, nil); err != nil {
		t.Error("identity:", err)
	}
	// Triangle inequality.
	tri := func(a, b, c string) bool {
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("triangle:", err)
	}
	// Bounded by max length.
	bound := func(a, b string) bool {
		d := EditDistance(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		hi := la
		if lb > hi {
			hi = lb
		}
		lo := la - lb
		if lo < 0 {
			lo = -lo
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(bound, nil); err != nil {
		t.Error("bound:", err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abd", 2},
		{"same", "same", 4},
		{"x", "y", 0},
	}
	for _, tt := range tests {
		if got := CommonPrefixLen(tt.a, tt.b); got != tt.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}
