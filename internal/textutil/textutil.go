// Package textutil provides small text helpers used across Namer, most
// importantly the edit distance that backs feature 16 of Table 1.
package textutil

// EditDistance returns the Levenshtein distance between a and b: the
// minimum number of single-rune insertions, deletions and substitutions
// that transform one into the other.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// CommonPrefixLen returns the number of leading runes a and b share.
func CommonPrefixLen(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n := 0
	for n < len(ra) && n < len(rb) && ra[n] == rb[n] {
		n++
	}
	return n
}
