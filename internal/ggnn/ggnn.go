// Package ggnn reimplements the gated graph neural network baseline of
// §5.6 (Allamanis et al., "Learning to Represent Programs with Graphs"):
// typed message passing over program graphs with GRU node updates, scoring
// repair candidates for the variable-misuse task. Dimensions are scaled
// down to run on CPU (the substitution is documented in DESIGN.md); the
// architecture — per-edge-type linear messages, GRU state updates, pointer
// scoring of candidates — follows the original.
package ggnn

import (
	"math/rand"

	"namer/internal/graphs"
	"namer/internal/neural"
	"namer/internal/synthetic"
)

// Config sizes the network.
type Config struct {
	VocabSize int
	Dim       int // hidden size (paper: 128+; default 24)
	Steps     int // message-passing steps (paper: 8; default 2)
	Seed      int64
}

// Model is a trained or trainable GGNN.
type Model struct {
	cfg    Config
	params *neural.Params

	emb  *neural.Tensor
	msgW [graphs.NumEdgeTypes]*neural.Tensor

	wz, uz, bz *neural.Tensor
	wr, ur, br *neural.Tensor
	wh, uh, bh *neural.Tensor

	scoreW *neural.Tensor
}

// New builds a model with randomly initialized parameters.
func New(cfg Config) *Model {
	if cfg.Dim <= 0 {
		cfg.Dim = 24
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	p := neural.NewParams()
	m := &Model{cfg: cfg, params: p}
	d := cfg.Dim
	m.emb = p.New(cfg.VocabSize, d, rng)
	for e := 0; e < int(graphs.NumEdgeTypes); e++ {
		m.msgW[e] = p.New(d, d, rng)
	}
	m.wz, m.uz, m.bz = p.New(d, d, rng), p.New(d, d, rng), p.NewZero(1, d)
	m.wr, m.ur, m.br = p.New(d, d, rng), p.New(d, d, rng), p.NewZero(1, d)
	m.wh, m.uh, m.bh = p.New(d, d, rng), p.New(d, d, rng), p.NewZero(1, d)
	m.scoreW = p.New(d, d, rng)
	return m
}

// ParamCount returns the number of scalar parameters.
func (m *Model) ParamCount() int { return m.params.Count() }

// forward computes candidate logits (1×K) for a sample.
func (m *Model) forward(t *neural.Tape, s *synthetic.Sample) *neural.Tensor {
	g := s.G
	h := t.Rows(m.emb, g.Vals)
	for step := 0; step < m.cfg.Steps; step++ {
		// Typed messages summed over edge types.
		var msg *neural.Tensor
		for e := 0; e < int(graphs.NumEdgeTypes); e++ {
			edges := g.Edges[e]
			if len(edges) == 0 {
				continue
			}
			part := t.Aggregate(t.MatMul(h, m.msgW[e]), edges)
			if msg == nil {
				msg = part
			} else {
				msg = t.Add(msg, part)
			}
		}
		if msg == nil {
			msg = t.Scale(h, 0)
		}
		// GRU update.
		z := t.Sigmoid(t.AddBias(t.Add(t.MatMul(msg, m.wz), t.MatMul(h, m.uz)), m.bz))
		r := t.Sigmoid(t.AddBias(t.Add(t.MatMul(msg, m.wr), t.MatMul(h, m.ur)), m.br))
		cand := t.Tanh(t.AddBias(t.Add(t.MatMul(msg, m.wh), t.MatMul(t.Mul(r, h), m.uh)), m.bh))
		h = t.Add(t.Mul(t.OneMinus(z), h), t.Mul(z, cand))
	}
	slotH := t.Rows(h, []int{s.Slot})
	q := t.MatMul(slotH, m.scoreW)
	cands := t.Rows(m.emb, s.CandIDs)
	return t.MatMulT(q, cands)
}

// Train runs epochs of per-sample Adam updates and returns the mean loss
// of each epoch.
func (m *Model) Train(samples []*synthetic.Sample, epochs int, lr float64) []float64 {
	rng := rand.New(rand.NewSource(m.cfg.Seed + 200))
	var losses []float64
	for ep := 0; ep < epochs; ep++ {
		perm := rng.Perm(len(samples))
		total := 0.0
		for _, i := range perm {
			s := samples[i]
			if s.Correct < 0 {
				continue
			}
			m.params.ZeroGrad()
			tape := neural.NewTape()
			logits := m.forward(tape, s)
			loss := tape.SoftmaxCrossEntropy(logits, s.Correct)
			neural.SeedGrad(loss)
			tape.Backward()
			m.params.AdamStep(lr)
			total += loss.W[0]
		}
		losses = append(losses, total/float64(len(samples)))
	}
	return losses
}

// Score implements synthetic.Scorer.
func (m *Model) Score(s *synthetic.Sample) []float64 {
	tape := neural.NewTape()
	logits := m.forward(tape, s)
	out := make([]float64, logits.C)
	copy(out, logits.W)
	return out
}
