package ggnn

import (
	"math/rand"
	"testing"

	"namer/internal/ast"
	"namer/internal/graphs"
	"namer/internal/pylang"
	"namer/internal/synthetic"
)

// trainSet builds a small misuse training set from template functions.
func trainSet(t *testing.T, vocab *graphs.Vocab, n int) []*synthetic.Sample {
	t.Helper()
	src := `def combine(left, right):
    total = left + right
    scaled = total * left
    return scaled

def clamp(value, limit):
    if value > limit:
        return limit
    return value
`
	root, err := pylang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fns := fnsOf(root)
	rng := rand.New(rand.NewSource(42))
	var samples []*synthetic.Sample
	for len(samples) < n {
		fn := fns[rng.Intn(len(fns))]
		if rng.Intn(2) == 0 {
			cs := synthetic.CleanSamples(fn, vocab, 0)
			if len(cs) > 0 {
				samples = append(samples, cs[rng.Intn(len(cs))])
			}
		} else if s, ok := synthetic.Inject(fn, vocab, rng); ok {
			samples = append(samples, s)
		}
	}
	return samples
}

func fnsOf(root *ast.Node) []*ast.Node { return synthetic.Functions(root) }

func repairAccuracy(m synthetic.Scorer, samples []*synthetic.Sample) float64 {
	correct := 0
	for _, s := range samples {
		scores := m.Score(s)
		best := 0
		for i, sc := range scores {
			if sc > scores[best] {
				best = i
			}
		}
		if best == s.Correct {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

func TestTrainingReducesLoss(t *testing.T) {
	vocab := graphs.NewVocab()
	samples := trainSet(t, vocab, 60)
	m := New(Config{VocabSize: vocab.Len() + 8, Dim: 12, Steps: 2, Seed: 1})
	losses := m.Train(samples, 4, 0.01)
	if len(losses) != 4 {
		t.Fatalf("losses = %v", losses)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
}

func TestRepairBeatsChance(t *testing.T) {
	vocab := graphs.NewVocab()
	train := trainSet(t, vocab, 80)
	m := New(Config{VocabSize: vocab.Len() + 8, Dim: 12, Steps: 2, Seed: 2})
	m.Train(train, 6, 0.01)
	test := trainSet(t, vocab, 30)
	acc := repairAccuracy(m, test)
	// Candidate sets have >= 2 entries; chance is < 0.5.
	if acc < 0.5 {
		t.Errorf("repair accuracy = %.2f, want >= 0.5", acc)
	}
}

func TestParamCount(t *testing.T) {
	m := New(Config{VocabSize: 10, Dim: 8, Steps: 1, Seed: 3})
	if m.ParamCount() == 0 {
		t.Error("no parameters")
	}
}

func TestScoreShape(t *testing.T) {
	vocab := graphs.NewVocab()
	samples := trainSet(t, vocab, 4)
	m := New(Config{VocabSize: vocab.Len() + 8, Dim: 8, Steps: 1, Seed: 4})
	s := samples[0]
	scores := m.Score(s)
	if len(scores) != len(s.Candidates) {
		t.Errorf("scores = %d, candidates = %d", len(scores), len(s.Candidates))
	}
}
