package pylang

import (
	"strings"
	"testing"

	"namer/internal/ast"
)

func mustParse(t *testing.T, src string) *ast.Node {
	t.Helper()
	root, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return root
}

func TestParseSimpleAssign(t *testing.T) {
	root := mustParse(t, "x = 1\n")
	if root.Kind != ast.Module || len(root.Children) != 1 {
		t.Fatalf("bad module: %s", root)
	}
	stmt := root.Children[0]
	if stmt.Kind != ast.Assign {
		t.Fatalf("want Assign, got %v", stmt.Kind)
	}
	if stmt.Children[0].Kind != ast.NameStore {
		t.Errorf("target should be NameStore, got %v", stmt.Children[0].Kind)
	}
	if stmt.Children[1].Kind != ast.Num {
		t.Errorf("value should be Num, got %v", stmt.Children[1].Kind)
	}
}

func TestParseFigure2Snippet(t *testing.T) {
	src := `class TestPicture(TestCase):
    def test_angle_picture(self):
        rotated_picture_name = "IMG_2259.jpg"
        for picture in self.slide.pictures:
            if picture.relative_path \
                    == rotated_picture_name:
                picture = self.slide.pictures[0]
                self.assertTrue(picture.rotate_angle, 90)
                break
`
	root := mustParse(t, src)
	cls := root.Children[0]
	if cls.Kind != ast.ClassDef {
		t.Fatalf("want ClassDef, got %v", cls.Kind)
	}
	// Class name and base.
	if cls.Children[0].Value != "TestPicture" {
		t.Errorf("class name = %q", cls.Children[0].Value)
	}
	bases := cls.Children[1]
	if bases.Kind != ast.Bases || len(bases.Children) != 1 {
		t.Fatalf("bases wrong: %s", bases)
	}
	if bases.Children[0].Children[0].Value != "TestCase" {
		t.Errorf("base = %q", bases.Children[0].Children[0].Value)
	}
	// Find the assertTrue call statement.
	var call *ast.Node
	root.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.Call {
			if att := n.Children[0]; att.Kind == ast.AttributeLoad &&
				len(att.Children) == 2 && att.Children[1].Children[0].Value == "assertTrue" {
				call = n
			}
		}
		return true
	})
	if call == nil {
		t.Fatal("assertTrue call not found")
	}
	if len(call.Children) != 3 { // receiver-attr, arg1, arg2
		t.Fatalf("call arity: %s", call)
	}
	if call.Children[2].Kind != ast.Num {
		t.Errorf("second arg should be Num, got %v", call.Children[2].Kind)
	}
	recv := call.Children[0].Children[0]
	if recv.Kind != ast.NameLoad || recv.Children[0].Value != "self" {
		t.Errorf("receiver = %s", recv)
	}
}

func TestParseStatementsKinds(t *testing.T) {
	tests := []struct {
		src  string
		kind ast.Kind
	}{
		{"return x\n", ast.Return},
		{"return\n", ast.Return},
		{"pass\n", ast.Pass},
		{"break\n", ast.Break},
		{"continue\n", ast.Continue},
		{"raise ValueError(msg)\n", ast.Raise},
		{"import os\n", ast.Import},
		{"import os.path as osp\n", ast.Import},
		{"from unittest import TestCase\n", ast.ImportFrom},
		{"from . import mod\n", ast.ImportFrom},
		{"from os.path import (join, split)\n", ast.ImportFrom},
		{"global counter\n", ast.Global},
		{"nonlocal x\n", ast.Nonlocal},
		{"assert x == 1, 'oops'\n", ast.AssertStmt},
		{"del x[0]\n", ast.Delete},
		{"x += 1\n", ast.AugAssign},
		{"x: int = 5\n", ast.AnnAssign},
		{"foo(1, 2)\n", ast.ExprStmt},
		{"x = yield v\n", ast.Assign},
	}
	for _, tt := range tests {
		root := mustParse(t, tt.src)
		if len(root.Children) == 0 {
			t.Fatalf("%q: empty module", tt.src)
		}
		if got := root.Children[0].Kind; got != tt.kind {
			t.Errorf("%q: kind = %v, want %v", tt.src, got, tt.kind)
		}
	}
}

func TestParseCompound(t *testing.T) {
	src := `if a:
    x = 1
elif b:
    x = 2
else:
    x = 3
while cond:
    tick()
else:
    done()
for i in range(10):
    use(i)
try:
    risky()
except ValueError as e:
    handle(e)
except Exception:
    pass
else:
    ok()
finally:
    cleanup()
with open(path) as f, lock:
    f.read()
`
	root := mustParse(t, src)
	kinds := []ast.Kind{ast.If, ast.While, ast.For, ast.Try, ast.With}
	if len(root.Children) != len(kinds) {
		t.Fatalf("got %d top-level statements, want %d", len(root.Children), len(kinds))
	}
	for i, k := range kinds {
		if root.Children[i].Kind != k {
			t.Errorf("stmt %d kind = %v, want %v", i, root.Children[i].Kind, k)
		}
	}
	// Try has handlers, else, finally.
	try := root.Children[3]
	var handlers, elses, finals int
	for _, c := range try.Children {
		switch c.Kind {
		case ast.ExceptHandler:
			handlers++
		case ast.Else:
			elses++
		case ast.Finally:
			finals++
		}
	}
	if handlers != 2 || elses != 1 || finals != 1 {
		t.Errorf("try structure: %d handlers %d else %d finally", handlers, elses, finals)
	}
}

func TestParseExpressions(t *testing.T) {
	srcs := []string{
		"x = a or b and not c\n",
		"x = a < b <= c\n",
		"x = a in xs and b not in ys and c is None and d is not None\n",
		"x = -a + b * c ** 2 // d % e\n",
		"x = (a | b) & (c ^ d) << 2 >> 1\n",
		"x = f(a, b=1, *args, **kwargs)\n",
		"x = obj.attr.method(arg)[0][1:2][::2][a:b:c]\n",
		"x = [1, 2, 3]\n",
		"x = (1, 2)\n",
		"x = {}\n",
		"x = {'k': v, **extra}\n",
		"x = {1, 2, 3}\n",
		"x = [y for y in ys if y > 0]\n",
		"x = {k: v for k, v in items}\n",
		"x = (y for y in ys)\n",
		"total = sum(v for v in vals)\n",
		"f = lambda a, b=2, *args, **kw: a + b\n",
		"x = a if cond else b\n",
		"s = 'abc' \"def\"\n",
		"s = f'{x} items'\n",
		"s = r'\\d+'\n",
		"s = '''triple\nline'''\n",
		"n = 0x1F + 0o17 + 0b101 + 1_000 + 1.5e-3 + 2j\n",
		"x = ...\n",
		"a, b = b, a\n",
		"a = b = c = 0\n",
		"(a, b), c = pair, z\n",
		"x[k] = v\n",
		"obj.field = v\n",
		"first, *rest = xs\n",
	}
	for _, src := range srcs {
		mustParse(t, src)
	}
}

func TestParseDecorators(t *testing.T) {
	src := `@decorator
@mod.wrap(arg)
def f(x, y=1, *args, **kwargs):
    return x
`
	root := mustParse(t, src)
	fn := root.Children[0]
	if fn.Kind != ast.FunctionDef {
		t.Fatalf("want FunctionDef, got %v", fn.Kind)
	}
	decs := 0
	for _, c := range fn.Children {
		if c.Kind == ast.Decorator {
			decs++
		}
	}
	if decs != 2 {
		t.Errorf("decorators = %d, want 2", decs)
	}
	// Params include default, vararg, kwarg.
	var params *ast.Node
	for _, c := range fn.Children {
		if c.Kind == ast.Params {
			params = c
		}
	}
	if params == nil || len(params.Children) != 4 {
		t.Fatalf("params: %s", params)
	}
	if params.Children[1].Kind != ast.DefaultParam ||
		params.Children[2].Kind != ast.VarArgParam ||
		params.Children[3].Kind != ast.KwArgParam {
		t.Errorf("param kinds: %s", params)
	}
}

func TestParseInlineSuite(t *testing.T) {
	root := mustParse(t, "if x: y = 1\n")
	ifStmt := root.Children[0]
	if ifStmt.Kind != ast.If {
		t.Fatalf("want If, got %v", ifStmt.Kind)
	}
	var sawAssign bool
	ifStmt.Walk(func(n *ast.Node) bool {
		if n.Kind == ast.Assign {
			sawAssign = true
		}
		return true
	})
	if !sawAssign {
		t.Error("inline suite lost the assignment")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"def f(:\n    pass\n",
		"x = (1,\n", // unterminated paren: EOF inside expr
		"class :\n    pass\n",
		"x = 'unterminated\n",
		"if x\n    pass\n",
		"x = !!\n",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseIndentation(t *testing.T) {
	src := "def f():\n\tif x:\n\t\treturn 1\n\treturn 0\n"
	root := mustParse(t, src)
	if root.Children[0].Kind != ast.FunctionDef {
		t.Fatal("tab-indented function failed")
	}
	// Inconsistent dedent.
	if _, err := Parse("if x:\n        a = 1\n   b = 2\n"); err == nil {
		t.Error("inconsistent dedent should fail")
	}
}

func TestParseLineNumbers(t *testing.T) {
	src := "a = 1\n\nb = 2\n"
	root := mustParse(t, src)
	if root.Children[0].Line != 1 || root.Children[1].Line != 3 {
		t.Errorf("lines = %d, %d; want 1, 3", root.Children[0].Line, root.Children[1].Line)
	}
}

func TestParseClassKeywordBase(t *testing.T) {
	root := mustParse(t, "class C(Base, metaclass=Meta):\n    pass\n")
	bases := root.Children[0].Children[1]
	if len(bases.Children) != 2 {
		t.Fatalf("bases: %s", bases)
	}
	if bases.Children[1].Kind != ast.Keyword {
		t.Errorf("metaclass should be Keyword, got %v", bases.Children[1].Kind)
	}
}

func TestStatementsOnParsedFile(t *testing.T) {
	src := `class C(Base):
    def m(self, a):
        x = a + 1
        if x:
            return x
        return 0
`
	root := mustParse(t, src)
	stmts := ast.Statements(root)
	// class, def, x=a+1, if, return x, return 0
	if len(stmts) != 6 {
		for _, s := range stmts {
			t.Log(s.Root.Fingerprint())
		}
		t.Fatalf("got %d statements, want 6", len(stmts))
	}
	if stmts[2].EnclosingClass != "C" || stmts[2].EnclosingFunc != "m" {
		t.Errorf("context = (%q, %q)", stmts[2].EnclosingClass, stmts[2].EnclosingFunc)
	}
}

func TestParseSemicolons(t *testing.T) {
	root := mustParse(t, "a = 1; b = 2; c = 3\n")
	blk := root.Children[0]
	if blk.Kind != ast.Block || len(blk.Children) != 3 {
		t.Fatalf("semicolon block: %s", blk)
	}
}

func TestParseComments(t *testing.T) {
	src := "# leading comment\nx = 1  # trailing\n# only comment line\ny = 2\n"
	root := mustParse(t, src)
	if len(root.Children) != 2 {
		t.Fatalf("got %d statements, want 2", len(root.Children))
	}
}

func TestParseDeepNesting(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("x = ")
	for i := 0; i < 50; i++ {
		sb.WriteString("(")
	}
	sb.WriteString("1")
	for i := 0; i < 50; i++ {
		sb.WriteString(")")
	}
	sb.WriteString("\n")
	mustParse(t, sb.String())
}
