package pylang

import (
	"fmt"

	"namer/internal/ast"
)

// Parse parses Python source into a unified AST rooted at a Module node.
func Parse(src string) (*ast.Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var root *ast.Node
	err = p.recoverParse(func() {
		root = p.parseModule()
	})
	if err != nil {
		return nil, err
	}
	return root, nil
}

type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

type parser struct {
	toks []token
	pos  int
}

func (p *parser) recoverParse(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*parseError); ok {
				err = pe
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) fail(format string, args ...any) {
	panic(&parseError{p.cur().line, fmt.Sprintf(format, args...)})
}

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) atKw(kw string) bool { return p.at(tokKeyword, kw) }
func (p *parser) atOp(op string) bool { return p.at(tokOp, op) }

func (p *parser) eat(k tokKind, text string) token {
	if !p.at(k, text) {
		p.fail("expected %s %q, got %s %q", k, text, p.cur().kind, p.cur().text)
	}
	return p.next()
}

func (p *parser) eatOp(op string) token { return p.eat(tokOp, op) }
func (p *parser) eatKw(kw string) token { return p.eat(tokKeyword, kw) }

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool { return p.accept(tokOp, op) }
func (p *parser) acceptKw(kw string) bool { return p.accept(tokKeyword, kw) }

func node(k ast.Kind, line int, children ...*ast.Node) *ast.Node {
	n := ast.NewNode(k, children...)
	n.Line = line
	return n
}

func leaf(k ast.Kind, text string, line int) *ast.Node {
	n := ast.NewLeaf(k, text)
	n.Line = line
	return n
}

// parseModule: statements until EOF.
func (p *parser) parseModule() *ast.Node {
	mod := node(ast.Module, 1)
	for !p.at(tokEOF, "") {
		if p.accept(tokNewline, "") {
			continue
		}
		mod.Add(p.parseStatement())
	}
	return mod
}

// parseBlock parses either an indented suite or a simple statement list on
// the same line (`if x: return y`).
func (p *parser) parseBlock() *ast.Node {
	body := node(ast.Body, p.cur().line)
	p.eatOp(":")
	if p.accept(tokNewline, "") {
		p.eat(tokIndent, "")
		for !p.at(tokDedent, "") && !p.at(tokEOF, "") {
			if p.accept(tokNewline, "") {
				continue
			}
			body.Add(p.parseStatement())
		}
		p.accept(tokDedent, "")
		return body
	}
	// Inline suite: simple statements separated by ';'.
	for {
		body.Add(p.parseSimpleStatement())
		if !p.acceptOp(";") {
			break
		}
		if p.at(tokNewline, "") {
			break
		}
	}
	p.accept(tokNewline, "")
	return body
}

func (p *parser) parseStatement() *ast.Node {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "def":
			return p.parseFunctionDef(nil)
		case "class":
			return p.parseClassDef(nil)
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "try":
			return p.parseTry()
		case "with":
			return p.parseWith()
		}
	}
	if p.atOp("@") {
		return p.parseDecorated()
	}
	stmt := p.parseSimpleStatement()
	for p.acceptOp(";") {
		if p.at(tokNewline, "") {
			break
		}
		// Additional simple statements on the same line: keep only by
		// chaining into an ExprStmt sequence is wrong; emit them as
		// siblings is impossible here, so wrap in a Body-free trick: we
		// simply parse and discard position by attaching to a Block.
		extra := p.parseSimpleStatement()
		blk := node(ast.Block, stmt.Line, stmt, extra)
		for p.acceptOp(";") {
			if p.at(tokNewline, "") {
				break
			}
			blk.Add(p.parseSimpleStatement())
		}
		p.accept(tokNewline, "")
		return blk
	}
	p.accept(tokNewline, "")
	return stmt
}

func (p *parser) parseDecorated() *ast.Node {
	var decs []*ast.Node
	for p.atOp("@") {
		line := p.next().line
		expr := p.parsePostfix(p.parseAtom())
		decs = append(decs, node(ast.Decorator, line, expr))
		p.accept(tokNewline, "")
	}
	if p.atKw("def") {
		return p.parseFunctionDef(decs)
	}
	if p.atKw("class") {
		return p.parseClassDef(decs)
	}
	p.fail("expected def or class after decorator")
	return nil
}

func (p *parser) parseFunctionDef(decs []*ast.Node) *ast.Node {
	line := p.eatKw("def").line
	name := p.eat(tokName, "")
	fn := node(ast.FunctionDef, line)
	fn.Add(decs...)
	fn.Add(leaf(ast.Ident, name.text, name.line))
	fn.Add(p.parseParams())
	if p.acceptOp("->") {
		p.parseExpr() // return annotation, discarded
	}
	fn.Add(p.parseBlock())
	return fn
}

func (p *parser) parseParams() *ast.Node {
	params := node(ast.Params, p.cur().line)
	p.eatOp("(")
	for !p.atOp(")") {
		line := p.cur().line
		switch {
		case p.acceptOp("*"):
			if p.atOp(",") || p.atOp(")") {
				// bare * separator
			} else {
				nm := p.eat(tokName, "")
				params.Add(node(ast.VarArgParam, line, leaf(ast.Ident, nm.text, nm.line)))
			}
		case p.acceptOp("**"):
			nm := p.eat(tokName, "")
			params.Add(node(ast.KwArgParam, line, leaf(ast.Ident, nm.text, nm.line)))
		default:
			nm := p.eat(tokName, "")
			par := node(ast.Param, line, leaf(ast.Ident, nm.text, nm.line))
			if p.acceptOp(":") {
				ann := p.parseExpr()
				par.Add(node(ast.TypeRef, line, ann))
			}
			if p.acceptOp("=") {
				def := p.parseExpr()
				par = node(ast.DefaultParam, line, par.Children...)
				par.Add(def)
			}
			params.Add(par)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	p.eatOp(")")
	return params
}

func (p *parser) parseClassDef(decs []*ast.Node) *ast.Node {
	line := p.eatKw("class").line
	name := p.eat(tokName, "")
	cls := node(ast.ClassDef, line)
	cls.Add(decs...)
	cls.Add(leaf(ast.Ident, name.text, name.line))
	bases := node(ast.Bases, line)
	if p.acceptOp("(") {
		for !p.atOp(")") {
			if p.at(tokName, "") && p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "=" {
				// metaclass=... keyword; parse and keep as Keyword node.
				nm := p.next()
				p.eatOp("=")
				v := p.parseExpr()
				bases.Add(node(ast.Keyword, nm.line, leaf(ast.Ident, nm.text, nm.line), v))
			} else {
				bases.Add(p.parseExpr())
			}
			if !p.acceptOp(",") {
				break
			}
		}
		p.eatOp(")")
	}
	cls.Add(bases)
	cls.Add(p.parseBlock())
	return cls
}

func (p *parser) parseIf() *ast.Node {
	line := p.eatKw("if").line
	stmt := node(ast.If, line, p.parseExpr(), p.parseBlock())
	for p.atKw("elif") {
		eline := p.next().line
		stmt.Add(node(ast.Elif, eline, p.parseExpr(), p.parseBlock()))
	}
	if p.atKw("else") {
		eline := p.next().line
		stmt.Add(node(ast.Else, eline, p.parseBlock()))
	}
	return stmt
}

func (p *parser) parseFor() *ast.Node {
	line := p.eatKw("for").line
	target := toStore(p.parseTargetList())
	p.eatKw("in")
	iter := p.parseExprList()
	stmt := node(ast.For, line, target, iter, p.parseBlock())
	if p.atKw("else") {
		eline := p.next().line
		stmt.Add(node(ast.Else, eline, p.parseBlock()))
	}
	return stmt
}

func (p *parser) parseWhile() *ast.Node {
	line := p.eatKw("while").line
	stmt := node(ast.While, line, p.parseExpr(), p.parseBlock())
	if p.atKw("else") {
		eline := p.next().line
		stmt.Add(node(ast.Else, eline, p.parseBlock()))
	}
	return stmt
}

func (p *parser) parseTry() *ast.Node {
	line := p.eatKw("try").line
	stmt := node(ast.Try, line, p.parseBlock())
	for p.atKw("except") {
		eline := p.next().line
		h := node(ast.ExceptHandler, eline)
		if !p.atOp(":") {
			h.Add(p.parseExpr())
			if p.acceptKw("as") {
				nm := p.eat(tokName, "")
				h.Add(node(ast.NameStore, nm.line, leaf(ast.Ident, nm.text, nm.line)))
			}
		}
		h.Add(p.parseBlock())
		stmt.Add(h)
	}
	if p.atKw("else") {
		eline := p.next().line
		stmt.Add(node(ast.Else, eline, p.parseBlock()))
	}
	if p.atKw("finally") {
		fline := p.next().line
		stmt.Add(node(ast.Finally, fline, p.parseBlock()))
	}
	return stmt
}

func (p *parser) parseWith() *ast.Node {
	line := p.eatKw("with").line
	stmt := node(ast.With, line)
	for {
		iline := p.cur().line
		item := node(ast.WithItem, iline, p.parseExpr())
		if p.acceptKw("as") {
			item.Add(toStore(p.parseTarget()))
		}
		stmt.Add(item)
		if !p.acceptOp(",") {
			break
		}
	}
	stmt.Add(p.parseBlock())
	return stmt
}

func (p *parser) parseSimpleStatement() *ast.Node {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "return":
			p.next()
			stmt := node(ast.Return, t.line)
			if !p.at(tokNewline, "") && !p.atOp(";") && !p.at(tokEOF, "") && !p.at(tokDedent, "") {
				stmt.Add(p.parseExprList())
			}
			return stmt
		case "pass":
			p.next()
			return node(ast.Pass, t.line)
		case "break":
			p.next()
			return node(ast.Break, t.line)
		case "continue":
			p.next()
			return node(ast.Continue, t.line)
		case "raise":
			p.next()
			stmt := node(ast.Raise, t.line)
			if !p.at(tokNewline, "") && !p.atOp(";") && !p.at(tokEOF, "") {
				stmt.Add(p.parseExpr())
				if p.acceptKw("from") {
					stmt.Add(p.parseExpr())
				}
			}
			return stmt
		case "import":
			return p.parseImport()
		case "from":
			return p.parseFromImport()
		case "global", "nonlocal":
			p.next()
			kind := ast.Global
			if t.text == "nonlocal" {
				kind = ast.Nonlocal
			}
			stmt := node(kind, t.line)
			for {
				nm := p.eat(tokName, "")
				stmt.Add(leaf(ast.Ident, nm.text, nm.line))
				if !p.acceptOp(",") {
					break
				}
			}
			return stmt
		case "assert":
			p.next()
			stmt := node(ast.AssertStmt, t.line, p.parseExpr())
			if p.acceptOp(",") {
				stmt.Add(p.parseExpr())
			}
			return stmt
		case "del":
			p.next()
			stmt := node(ast.Delete, t.line)
			for {
				stmt.Add(p.parseTarget())
				if !p.acceptOp(",") {
					break
				}
			}
			return stmt
		case "yield":
			return node(ast.ExprStmt, t.line, p.parseYield())
		}
	}
	return p.parseExprStatement()
}

func (p *parser) parseImport() *ast.Node {
	line := p.eatKw("import").line
	stmt := node(ast.Import, line)
	for {
		name := p.parseDottedName()
		alias := node(ast.ImportAlias, line, leaf(ast.Ident, name, line))
		if p.acceptKw("as") {
			nm := p.eat(tokName, "")
			alias.Add(leaf(ast.Ident, nm.text, nm.line))
		}
		stmt.Add(alias)
		if !p.acceptOp(",") {
			break
		}
	}
	return stmt
}

func (p *parser) parseFromImport() *ast.Node {
	line := p.eatKw("from").line
	dots := ""
	for p.atOp(".") || p.atOp("...") {
		dots += p.next().text
	}
	mod := dots
	if p.at(tokName, "") {
		mod += p.parseDottedName()
	}
	stmt := node(ast.ImportFrom, line, leaf(ast.Ident, mod, line))
	p.eatKw("import")
	if p.acceptOp("*") {
		stmt.Add(node(ast.ImportAlias, line, leaf(ast.Ident, "*", line)))
		return stmt
	}
	paren := p.acceptOp("(")
	for {
		nm := p.eat(tokName, "")
		alias := node(ast.ImportAlias, nm.line, leaf(ast.Ident, nm.text, nm.line))
		if p.acceptKw("as") {
			a := p.eat(tokName, "")
			alias.Add(leaf(ast.Ident, a.text, a.line))
		}
		stmt.Add(alias)
		if !p.acceptOp(",") {
			break
		}
		if paren && p.atOp(")") {
			break
		}
	}
	if paren {
		p.eatOp(")")
	}
	return stmt
}

func (p *parser) parseDottedName() string {
	nm := p.eat(tokName, "").text
	for p.atOp(".") && p.toks[p.pos+1].kind == tokName {
		p.next()
		nm += "." + p.next().text
	}
	return nm
}

var augOps = map[string]bool{
	"+=": true, "-=": true, "*=": true, "/=": true, "//=": true, "%=": true,
	"**=": true, ">>=": true, "<<=": true, "&=": true, "|=": true, "^=": true,
	"@=": true,
}

func (p *parser) parseExprStatement() *ast.Node {
	line := p.cur().line
	first := p.parseExprList()
	t := p.cur()
	switch {
	case t.kind == tokOp && t.text == "=":
		stmt := node(ast.Assign, line, toStore(first))
		for p.acceptOp("=") {
			stmt.Add(p.parseExprListOrYield())
		}
		// All but the last are also targets.
		for i := 1; i < len(stmt.Children)-1; i++ {
			stmt.Children[i] = toStore(stmt.Children[i])
		}
		return stmt
	case t.kind == tokOp && augOps[t.text]:
		op := p.next()
		return node(ast.AugAssign, line, toStore(first),
			leaf(ast.OpTok, op.text, op.line), p.parseExprListOrYield())
	case t.kind == tokOp && t.text == ":":
		// Annotated assignment: target : type [= value]
		p.next()
		ann := p.parseExpr()
		stmt := node(ast.AnnAssign, line, toStore(first), node(ast.TypeRef, line, ann))
		if p.acceptOp("=") {
			stmt.Add(p.parseExprListOrYield())
		}
		return stmt
	}
	return node(ast.ExprStmt, line, first)
}

func (p *parser) parseExprListOrYield() *ast.Node {
	if p.atKw("yield") {
		return p.parseYield()
	}
	return p.parseExprList()
}

func (p *parser) parseYield() *ast.Node {
	line := p.eatKw("yield").line
	y := node(ast.Yield, line)
	if p.acceptKw("from") {
		y.Add(p.parseExpr())
		return y
	}
	if !p.at(tokNewline, "") && !p.atOp(")") && !p.atOp("]") && !p.atOp("}") &&
		!p.atOp(";") && !p.at(tokEOF, "") && !p.at(tokDedent, "") && !p.atOp(",") {
		y.Add(p.parseExprList())
	}
	return y
}

// parseExprList parses expr (, expr)* and wraps multiples in a TupleLit.
// Starred expressions (`first, *rest = xs`) are allowed as list elements.
func (p *parser) parseExprList() *ast.Node {
	first := p.parseStarredExpr()
	if !p.atOp(",") {
		return first
	}
	line := first.Line
	tup := node(ast.TupleLit, line, first)
	for p.acceptOp(",") {
		if p.exprFollows() {
			tup.Add(p.parseStarredExpr())
		} else {
			break
		}
	}
	return tup
}

func (p *parser) parseStarredExpr() *ast.Node {
	if p.atOp("*") {
		line := p.next().line
		return node(ast.StarArg, line, p.parseExpr())
	}
	return p.parseExpr()
}

func (p *parser) exprFollows() bool {
	t := p.cur()
	switch t.kind {
	case tokName, tokNumber, tokString:
		return true
	case tokKeyword:
		switch t.text {
		case "True", "False", "None", "not", "lambda":
			return true
		}
		return false
	case tokOp:
		switch t.text {
		case "(", "[", "{", "-", "+", "~", "*", "**":
			return true
		}
		return false
	}
	return false
}

// parseTargetList parses assignment/for targets.
func (p *parser) parseTargetList() *ast.Node {
	first := p.parseTarget()
	if !p.atOp(",") {
		return first
	}
	tup := node(ast.TupleLit, first.Line, first)
	for p.acceptOp(",") {
		if !p.exprFollows() {
			break
		}
		tup.Add(p.parseTarget())
	}
	return tup
}

func (p *parser) parseTarget() *ast.Node {
	if p.acceptOp("(") {
		t := p.parseTargetList()
		p.eatOp(")")
		return t
	}
	if p.acceptOp("*") {
		return node(ast.StarArg, p.cur().line, p.parseTarget())
	}
	return p.parsePostfix(p.parseAtom())
}

// toStore converts load-context nodes to their store-context kinds,
// recursing into tuple/list displays and star targets.
func toStore(n *ast.Node) *ast.Node {
	switch n.Kind {
	case ast.NameLoad:
		n.Kind = ast.NameStore
		n.Value = ast.NameStore.String()
	case ast.AttributeLoad:
		n.Kind = ast.AttributeStore
		n.Value = ast.AttributeStore.String()
	case ast.SubscriptLoad:
		n.Kind = ast.SubscriptStore
		n.Value = ast.SubscriptStore.String()
	case ast.TupleLit, ast.ListLit, ast.StarArg:
		for _, c := range n.Children {
			toStore(c)
		}
	}
	return n
}

// Expression grammar, precedence climbing.

func (p *parser) parseExpr() *ast.Node { return p.parseTernary() }

func (p *parser) parseTernary() *ast.Node {
	if p.atKw("lambda") {
		return p.parseLambda()
	}
	body := p.parseOr()
	if p.atKw("if") {
		line := p.next().line
		cond := p.parseOr()
		p.eatKw("else")
		orelse := p.parseExpr()
		return node(ast.Ternary, line, body, cond, orelse)
	}
	return body
}

func (p *parser) parseLambda() *ast.Node {
	line := p.eatKw("lambda").line
	params := node(ast.Params, line)
	for !p.atOp(":") {
		pline := p.cur().line
		switch {
		case p.acceptOp("*"):
			nm := p.eat(tokName, "")
			params.Add(node(ast.VarArgParam, pline, leaf(ast.Ident, nm.text, nm.line)))
		case p.acceptOp("**"):
			nm := p.eat(tokName, "")
			params.Add(node(ast.KwArgParam, pline, leaf(ast.Ident, nm.text, nm.line)))
		default:
			nm := p.eat(tokName, "")
			par := node(ast.Param, pline, leaf(ast.Ident, nm.text, nm.line))
			if p.acceptOp("=") {
				def := p.parseExpr()
				par = node(ast.DefaultParam, pline, par.Children...)
				par.Add(def)
			}
			params.Add(par)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	p.eatOp(":")
	return node(ast.Lambda, line, params, p.parseExpr())
}

func (p *parser) parseOr() *ast.Node {
	left := p.parseAnd()
	for p.atKw("or") {
		op := p.next()
		right := p.parseAnd()
		left = node(ast.BoolOp, op.line, leaf(ast.OpTok, "or", op.line), left, right)
	}
	return left
}

func (p *parser) parseAnd() *ast.Node {
	left := p.parseNot()
	for p.atKw("and") {
		op := p.next()
		right := p.parseNot()
		left = node(ast.BoolOp, op.line, leaf(ast.OpTok, "and", op.line), left, right)
	}
	return left
}

func (p *parser) parseNot() *ast.Node {
	if p.atKw("not") {
		op := p.next()
		return node(ast.UnaryOp, op.line, leaf(ast.OpTok, "not", op.line), p.parseNot())
	}
	return p.parseComparison()
}

var compareOps = map[string]bool{
	"==": true, "!=": true, "<": true, ">": true, "<=": true, ">=": true,
}

func (p *parser) parseComparison() *ast.Node {
	left := p.parseBitOr()
	var cmp *ast.Node
	for {
		var opText string
		t := p.cur()
		switch {
		case t.kind == tokOp && compareOps[t.text]:
			opText = p.next().text
		case p.atKw("in"):
			p.next()
			opText = "in"
		case p.atKw("is"):
			p.next()
			opText = "is"
			if p.acceptKw("not") {
				opText = "is not"
			}
		case p.atKw("not"):
			p.next()
			p.eatKw("in")
			opText = "not in"
		default:
			if cmp != nil {
				return cmp
			}
			return left
		}
		right := p.parseBitOr()
		if cmp == nil {
			cmp = node(ast.Compare, t.line, left)
		}
		cmp.Add(leaf(ast.OpTok, opText, t.line), right)
	}
}

func (p *parser) parseBitOr() *ast.Node { return p.parseBinLevel(0) }

// binary operator precedence levels, loosest first.
var binLevels = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "//", "%", "@"},
}

func (p *parser) parseBinLevel(level int) *ast.Node {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	left := p.parseBinLevel(level + 1)
	for {
		matched := ""
		for _, op := range binLevels[level] {
			if p.atOp(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return left
		}
		op := p.next()
		right := p.parseBinLevel(level + 1)
		left = node(ast.BinOp, op.line, leaf(ast.OpTok, matched, op.line), left, right)
	}
}

func (p *parser) parseUnary() *ast.Node {
	if p.atOp("-") || p.atOp("+") || p.atOp("~") {
		op := p.next()
		return node(ast.UnaryOp, op.line, leaf(ast.OpTok, op.text, op.line), p.parseUnary())
	}
	return p.parsePower()
}

func (p *parser) parsePower() *ast.Node {
	base := p.parsePostfix(p.parseAtom())
	if p.atOp("**") {
		op := p.next()
		exp := p.parseUnary()
		return node(ast.BinOp, op.line, leaf(ast.OpTok, "**", op.line), base, exp)
	}
	return base
}

// parsePostfix handles call, attribute and subscript suffixes.
func (p *parser) parsePostfix(expr *ast.Node) *ast.Node {
	for {
		switch {
		case p.atOp("("):
			line := p.next().line
			call := node(ast.Call, line, expr)
			for !p.atOp(")") {
				call.Add(p.parseCallArg())
				if !p.acceptOp(",") {
					break
				}
			}
			p.eatOp(")")
			expr = call
		case p.atOp(".") && p.toks[p.pos+1].kind == tokName:
			line := p.next().line
			nm := p.next()
			expr = node(ast.AttributeLoad, line, expr,
				node(ast.Attr, nm.line, leaf(ast.Ident, nm.text, nm.line)))
		case p.atOp("["):
			line := p.next().line
			idx := p.parseSubscript(line)
			p.eatOp("]")
			expr = node(ast.SubscriptLoad, line, expr, idx)
		default:
			return expr
		}
	}
}

func (p *parser) parseCallArg() *ast.Node {
	line := p.cur().line
	switch {
	case p.acceptOp("*"):
		return node(ast.StarArg, line, p.parseExpr())
	case p.acceptOp("**"):
		return node(ast.DoubleStarArg, line, p.parseExpr())
	case p.at(tokName, "") && p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "=":
		nm := p.next()
		p.eatOp("=")
		return node(ast.Keyword, nm.line, leaf(ast.Ident, nm.text, nm.line), p.parseExpr())
	}
	e := p.parseExpr()
	if p.atKw("for") {
		// Generator expression argument.
		return p.parseComprehensionTail(e, e.Line)
	}
	return e
}

func (p *parser) parseSubscript(line int) *ast.Node {
	// [a], [a:b], [a:b:c], [:], [::2], ...
	var lo, hi, step *ast.Node
	if !p.atOp(":") {
		lo = p.parseExpr()
		if !p.atOp(":") {
			if p.atOp(",") {
				tup := node(ast.TupleLit, line, lo)
				for p.acceptOp(",") {
					if p.atOp("]") {
						break
					}
					tup.Add(p.parseExpr())
				}
				return node(ast.Index, line, tup)
			}
			return node(ast.Index, line, lo)
		}
	}
	p.eatOp(":")
	if !p.atOp("]") && !p.atOp(":") {
		hi = p.parseExpr()
	}
	if p.acceptOp(":") {
		if !p.atOp("]") {
			step = p.parseExpr()
		}
	}
	sl := node(ast.SliceRange, line)
	for _, part := range []*ast.Node{lo, hi, step} {
		if part != nil {
			sl.Add(part)
		}
	}
	return sl
}

func (p *parser) parseAtom() *ast.Node {
	t := p.cur()
	switch t.kind {
	case tokName:
		p.next()
		return node(ast.NameLoad, t.line, leaf(ast.Ident, t.text, t.line))
	case tokNumber:
		p.next()
		return node(ast.Num, t.line, leaf(ast.NumLit, t.text, t.line))
	case tokString:
		p.next()
		// Adjacent string concatenation.
		text := t.text
		for p.at(tokString, "") {
			text += p.next().text
		}
		return node(ast.Str, t.line, leaf(ast.StrLit, text, t.line))
	case tokKeyword:
		switch t.text {
		case "True", "False":
			p.next()
			return node(ast.Bool, t.line, leaf(ast.BoolLit, t.text, t.line))
		case "None":
			p.next()
			return node(ast.Null, t.line, leaf(ast.NullLit, "None", t.line))
		case "lambda":
			return p.parseLambda()
		case "yield":
			return p.parseYield()
		}
	case tokOp:
		switch t.text {
		case "(":
			p.next()
			if p.acceptOp(")") {
				return node(ast.TupleLit, t.line)
			}
			e := p.parseExpr()
			if p.atKw("for") {
				c := p.parseComprehensionTail(e, t.line)
				p.eatOp(")")
				return c
			}
			if p.atOp(",") {
				tup := node(ast.TupleLit, t.line, e)
				for p.acceptOp(",") {
					if p.atOp(")") {
						break
					}
					tup.Add(p.parseExpr())
				}
				p.eatOp(")")
				return tup
			}
			p.eatOp(")")
			return e
		case "[":
			p.next()
			lst := node(ast.ListLit, t.line)
			if p.acceptOp("]") {
				return lst
			}
			e := p.parseExpr()
			if p.atKw("for") {
				c := p.parseComprehensionTail(e, t.line)
				p.eatOp("]")
				return c
			}
			lst.Add(e)
			for p.acceptOp(",") {
				if p.atOp("]") {
					break
				}
				lst.Add(p.parseExpr())
			}
			p.eatOp("]")
			return lst
		case "{":
			p.next()
			if p.acceptOp("}") {
				return node(ast.DictLit, t.line)
			}
			if p.acceptOp("**") {
				d := node(ast.DictLit, t.line, node(ast.DoubleStarArg, t.line, p.parseExpr()))
				for p.acceptOp(",") {
					if p.atOp("}") {
						break
					}
					d.Add(p.parseDictItem())
				}
				p.eatOp("}")
				return d
			}
			k := p.parseExpr()
			if p.acceptOp(":") {
				v := p.parseExpr()
				item := node(ast.DictItem, t.line, k, v)
				if p.atKw("for") {
					c := p.parseComprehensionTail(item, t.line)
					p.eatOp("}")
					return c
				}
				d := node(ast.DictLit, t.line, item)
				for p.acceptOp(",") {
					if p.atOp("}") {
						break
					}
					d.Add(p.parseDictItem())
				}
				p.eatOp("}")
				return d
			}
			if p.atKw("for") {
				c := p.parseComprehensionTail(k, t.line)
				p.eatOp("}")
				return c
			}
			s := node(ast.SetLit, t.line, k)
			for p.acceptOp(",") {
				if p.atOp("}") {
					break
				}
				s.Add(p.parseExpr())
			}
			p.eatOp("}")
			return s
		case "...":
			p.next()
			return node(ast.NameLoad, t.line, leaf(ast.Ident, "Ellipsis", t.line))
		}
	}
	p.fail("unexpected token %s %q", t.kind, t.text)
	return nil
}

func (p *parser) parseDictItem() *ast.Node {
	line := p.cur().line
	if p.acceptOp("**") {
		return node(ast.DoubleStarArg, line, p.parseExpr())
	}
	k := p.parseExpr()
	p.eatOp(":")
	return node(ast.DictItem, line, k, p.parseExpr())
}

func (p *parser) parseComprehensionTail(elt *ast.Node, line int) *ast.Node {
	comp := node(ast.Comprehension, line, elt)
	for p.atKw("for") {
		fline := p.next().line
		target := toStore(p.parseTargetList())
		p.eatKw("in")
		iter := p.parseOr()
		comp.Add(node(ast.CompFor, fline, target, iter))
		for p.atKw("if") {
			iline := p.next().line
			comp.Add(node(ast.CompIf, iline, p.parseOr()))
		}
	}
	return comp
}
