package pylang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"namer/internal/ast"
)

// Parse must never panic: it either returns a tree or an error, on any
// input.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Mutated valid programs (random byte edits) must also never panic.
func TestParseMutatedSources(t *testing.T) {
	base := `class Widget(Base):
    def __init__(self, name, port=80, *args, **kwargs):
        self.name = name
        for i in range(10):
            if i % 2 == 0:
                self.total += i
        try:
            risky({'k': [1, 2.5e3, 0x1F]})
        except ValueError as e:
            raise RuntimeError('bad') from e
        return lambda x: x + 1
`
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		b := []byte(base)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[pos] = byte(rng.Intn(128))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			default:
				b = append(b[:pos], append([]byte{byte(33 + rng.Intn(90))}, b[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated source: %v\n%s", r, b)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}

// Parsed output never contains empty-valued non-terminal nodes and always
// roots at Module.
func TestParseWellFormedOutput(t *testing.T) {
	srcs := []string{
		"x = 1\n",
		"def f():\n    pass\n",
		"class C:\n    pass\n",
		"for i in range(3):\n    print(i)\n",
	}
	for _, src := range srcs {
		root, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if root.Value != "Module" {
			t.Errorf("root = %q", root.Value)
		}
		root.Walk(func(n *ast.Node) bool {
			if !n.IsTerminal() && n.Value == "" {
				t.Errorf("empty non-terminal value in %q", src)
			}
			return true
		})
	}
}

// Deep indentation and long lines do not blow the stack.
func TestParsePathological(t *testing.T) {
	var sb strings.Builder
	for d := 0; d < 60; d++ {
		sb.WriteString(strings.Repeat("    ", d))
		sb.WriteString("if x:\n")
	}
	sb.WriteString(strings.Repeat("    ", 60))
	sb.WriteString("pass\n")
	if _, err := Parse(sb.String()); err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
	long := "x = " + strings.Repeat("1 + ", 2000) + "1\n"
	if _, err := Parse(long); err != nil {
		t.Fatalf("long expression: %v", err)
	}
}
