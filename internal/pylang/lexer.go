// Package pylang implements a lexer and recursive-descent parser for a
// substantial subset of Python, producing the unified AST of package ast.
// The subset covers everything the paper's examples and our Big Code corpus
// exercise: classes, functions (decorators, defaults, *args/**kwargs),
// compound statements, the full expression grammar with chained
// comparisons, comprehensions, slices, and keyword arguments.
package pylang

import (
	"fmt"
	"strings"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNewline
	tokIndent
	tokDedent
	tokName
	tokNumber
	tokString
	tokOp      // punctuation / operator
	tokKeyword // reserved word
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokNewline:
		return "NEWLINE"
	case tokIndent:
		return "INDENT"
	case tokDedent:
		return "DEDENT"
	case tokName:
		return "NAME"
	case tokNumber:
		return "NUMBER"
	case tokString:
		return "STRING"
	case tokOp:
		return "OP"
	case tokKeyword:
		return "KEYWORD"
	}
	return "?"
}

type token struct {
	kind tokKind
	text string
	line int
}

var pyKeywords = map[string]bool{
	"False": true, "None": true, "True": true, "and": true, "as": true,
	"assert": true, "break": true, "class": true, "continue": true,
	"def": true, "del": true, "elif": true, "else": true, "except": true,
	"finally": true, "for": true, "from": true, "global": true, "if": true,
	"import": true, "in": true, "is": true, "lambda": true, "nonlocal": true,
	"not": true, "or": true, "pass": true, "raise": true, "return": true,
	"try": true, "while": true, "with": true, "yield": true, "print": false,
}

// multi-char operators ordered longest-first so maximal munch works.
var pyOps = []string{
	"**=", "//=", ">>=", "<<=", "...",
	"==", "!=", "<=", ">=", "->", ":=", "+=", "-=", "*=", "/=", "%=",
	"&=", "|=", "^=", "**", "//", "<<", ">>", "@=",
	"+", "-", "*", "/", "%", "@", "&", "|", "^", "~", "<", ">",
	"(", ")", "[", "]", "{", "}", ",", ":", ".", ";", "=",
}

// lexError describes a lexical error with its line.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

// lex tokenizes Python source, emitting NEWLINE / INDENT / DEDENT tokens
// per the language's layout rules. Blank lines and comment-only lines emit
// nothing; brackets suppress NEWLINE (implicit line joining); a trailing
// backslash joins physical lines.
func lex(src string) ([]token, error) {
	var toks []token
	indents := []int{0}
	line := 1
	i := 0
	n := len(src)
	depth := 0 // bracket nesting
	atLineStart := true

	for i < n {
		if atLineStart && depth == 0 {
			// Measure indentation.
			start := i
			col := 0
			for i < n {
				if src[i] == ' ' {
					col++
					i++
				} else if src[i] == '\t' {
					col += 8 - col%8
					i++
				} else {
					break
				}
			}
			if i >= n {
				break
			}
			if src[i] == '\n' {
				i++
				line++
				continue // blank line
			}
			if src[i] == '#' {
				for i < n && src[i] != '\n' {
					i++
				}
				continue
			}
			if src[i] == '\r' {
				i++
				continue
			}
			cur := indents[len(indents)-1]
			if col > cur {
				indents = append(indents, col)
				toks = append(toks, token{tokIndent, "", line})
			} else if col < cur {
				for len(indents) > 1 && indents[len(indents)-1] > col {
					indents = indents[:len(indents)-1]
					toks = append(toks, token{tokDedent, "", line})
				}
				if indents[len(indents)-1] != col {
					return nil, &lexError{line, fmt.Sprintf("inconsistent dedent at column %d", col)}
				}
			}
			atLineStart = false
			_ = start
			continue
		}

		c := src[i]
		switch {
		case c == '\n':
			i++
			if depth == 0 {
				toks = append(toks, token{tokNewline, "", line})
				atLineStart = true
			}
			line++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\\' && i+1 < n && (src[i+1] == '\n' || src[i+1] == '\r'):
			// Explicit line joining.
			i++
			if i < n && src[i] == '\r' {
				i++
			}
			if i < n && src[i] == '\n' {
				i++
				line++
			}
		case isNameStart(c):
			j := i
			for j < n && isNameCont(src[j]) {
				j++
			}
			word := src[i:j]
			// String prefix? (r"", b'', f"", rb"", etc.)
			if j < n && (src[j] == '"' || src[j] == '\'') && isStringPrefix(word) {
				s, nl, err := lexString(src, j, line)
				if err != nil {
					return nil, err
				}
				toks = append(toks, token{tokString, src[i:s], line})
				line = nl
				i = s
				continue
			}
			if pyKeywords[word] {
				toks = append(toks, token{tokKeyword, word, line})
			} else {
				toks = append(toks, token{tokName, word, line})
			}
			i = j
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			for j < n && (isNameCont(src[j]) || src[j] == '.' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E') && isNumericSoFar(src[i:j]))) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case c == '"' || c == '\'':
			s, nl, err := lexString(src, i, line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokString, src[i:s], line})
			line = nl
			i = s
		default:
			op := ""
			for _, o := range pyOps {
				if strings.HasPrefix(src[i:], o) {
					op = o
					break
				}
			}
			if op == "" {
				return nil, &lexError{line, fmt.Sprintf("unexpected character %q", c)}
			}
			switch op {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				if depth > 0 {
					depth--
				}
			}
			toks = append(toks, token{tokOp, op, line})
			i += len(op)
		}
	}
	// Final NEWLINE if the last logical line lacks one.
	if len(toks) > 0 && toks[len(toks)-1].kind != tokNewline {
		toks = append(toks, token{tokNewline, "", line})
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, token{tokDedent, "", line})
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

func isNameCont(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9'
}

func isStringPrefix(w string) bool {
	if len(w) > 3 {
		return false
	}
	for _, r := range strings.ToLower(w) {
		switch r {
		case 'r', 'b', 'f', 'u':
		default:
			return false
		}
	}
	return true
}

func isNumericSoFar(s string) bool {
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r == '.' || r == 'e' || r == 'E' || r == 'x' || r == 'X' ||
			r >= 'a' && r <= 'f' || r >= 'A' && r <= 'F' || r == '_' || r == 'o' || r == 'O' || r == 'j') {
			return false
		}
	}
	return true
}

// lexString scans a string literal starting at the opening quote at src[i]
// and returns the index just past the closing quote plus the updated line
// number. Triple-quoted strings are supported.
func lexString(src string, i, line int) (int, int, error) {
	n := len(src)
	q := src[i]
	if i+2 < n && src[i+1] == q && src[i+2] == q {
		// Triple-quoted.
		j := i + 3
		for j+2 < n {
			if src[j] == '\\' {
				j += 2
				continue
			}
			if src[j] == q && src[j+1] == q && src[j+2] == q {
				return j + 3, line + strings.Count(src[i:j], "\n"), nil
			}
			j++
		}
		return 0, 0, &lexError{line, "unterminated triple-quoted string"}
	}
	j := i + 1
	for j < n {
		switch src[j] {
		case '\\':
			j += 2
		case q:
			return j + 1, line, nil
		case '\n':
			return 0, 0, &lexError{line, "unterminated string literal"}
		default:
			j++
		}
	}
	return 0, 0, &lexError{line, "unterminated string literal"}
}
