// Package features implements the 17-feature extraction function ϕ of
// §4.2 (Table 1). Features measure statistics of the violated pattern and
// the violating statement at three levels — file, repository, and the
// entire mining dataset — which §5.5 shows is key to the classifier's
// precision.
package features

import (
	"namer/internal/confusion"
	"namer/internal/pattern"
	"namer/internal/textutil"
)

// Count is the number of features (Table 1).
const Count = 17

// Names labels each feature index, matching Table 1's descriptions.
var Names = [Count]string{
	"num name paths of statement",
	"identical statements (file)",
	"identical statements (repo)",
	"satisfaction rate (file)",
	"satisfaction rate (repo)",
	"satisfaction rate (dataset)",
	"violations (file)",
	"violations (repo)",
	"violations (dataset)",
	"satisfactions (file)",
	"satisfactions (repo)",
	"satisfactions (dataset)",
	"targets function name",
	"num condition paths",
	"match ratio",
	"edit distance original/suggested",
	"is confusing word pair",
}

// PatternStats accumulates match/satisfaction counts for one pattern at
// one level. Violations are matches that are not satisfactions.
type PatternStats struct {
	Matches       int
	Satisfactions int
}

// Violations returns the violation count.
func (s PatternStats) Violations() int { return s.Matches - s.Satisfactions }

// Rate returns the satisfaction rate (feature 4-6); 0 when unmatched.
func (s PatternStats) Rate() float64 {
	if s.Matches == 0 {
		return 0
	}
	return float64(s.Satisfactions) / float64(s.Matches)
}

// Index aggregates the corpus statistics needed by ϕ. It is populated by
// the corpus-wide matching pass of the core pipeline.
type Index struct {
	fileStmts map[string]map[string]int // file -> statement fingerprint -> count
	repoStmts map[string]map[string]int
	filePat   map[string]map[string]*PatternStats // file -> pattern key -> stats
	repoPat   map[string]map[string]*PatternStats
	dataPat   map[string]*PatternStats
}

// NewIndex returns an empty statistics index.
func NewIndex() *Index {
	return &Index{
		fileStmts: make(map[string]map[string]int),
		repoStmts: make(map[string]map[string]int),
		filePat:   make(map[string]map[string]*PatternStats),
		repoPat:   make(map[string]map[string]*PatternStats),
		dataPat:   make(map[string]*PatternStats),
	}
}

// AddStatement records one statement occurrence (by fingerprint) for
// features 2-3.
func (ix *Index) AddStatement(repo, file, fingerprint string) {
	bump(ix.fileStmts, file, fingerprint)
	bump(ix.repoStmts, repo, fingerprint)
}

func bump(m map[string]map[string]int, outer, inner string) {
	mm, ok := m[outer]
	if !ok {
		mm = make(map[string]int)
		m[outer] = mm
	}
	mm[inner]++
}

// AddObservation records a pattern match (and whether it was satisfied)
// at all three levels, for features 4-12.
func (ix *Index) AddObservation(repo, file string, p *pattern.Pattern, satisfied bool) {
	k := p.Key()
	for _, st := range []*PatternStats{
		statsFor(ix.filePat, file, k),
		statsFor(ix.repoPat, repo, k),
		ix.dataStats(k),
	} {
		st.Matches++
		if satisfied {
			st.Satisfactions++
		}
	}
}

func statsFor(m map[string]map[string]*PatternStats, outer, key string) *PatternStats {
	mm, ok := m[outer]
	if !ok {
		mm = make(map[string]*PatternStats)
		m[outer] = mm
	}
	st, ok := mm[key]
	if !ok {
		st = &PatternStats{}
		mm[key] = st
	}
	return st
}

// Merge folds another index's counts into ix. The scan pipeline gives each
// statement shard a private Index (no locks on the hot path) and merges
// them shard-by-shard afterwards; all counts are additive, so the merged
// totals equal a serial pass regardless of shard boundaries.
func (ix *Index) Merge(other *Index) {
	for outer, mm := range other.fileStmts {
		for inner, n := range mm {
			bumpN(ix.fileStmts, outer, inner, n)
		}
	}
	for outer, mm := range other.repoStmts {
		for inner, n := range mm {
			bumpN(ix.repoStmts, outer, inner, n)
		}
	}
	mergePatternLevel(ix.filePat, other.filePat)
	mergePatternLevel(ix.repoPat, other.repoPat)
	for k, st := range other.dataPat {
		dst := ix.dataStats(k)
		dst.Matches += st.Matches
		dst.Satisfactions += st.Satisfactions
	}
}

func bumpN(m map[string]map[string]int, outer, inner string, n int) {
	mm, ok := m[outer]
	if !ok {
		mm = make(map[string]int)
		m[outer] = mm
	}
	mm[inner] += n
}

func mergePatternLevel(dst, src map[string]map[string]*PatternStats) {
	for outer, mm := range src {
		for key, st := range mm {
			d := statsFor(dst, outer, key)
			d.Matches += st.Matches
			d.Satisfactions += st.Satisfactions
		}
	}
}

func (ix *Index) dataStats(key string) *PatternStats {
	st, ok := ix.dataPat[key]
	if !ok {
		st = &PatternStats{}
		ix.dataPat[key] = st
	}
	return st
}

// StatementCount returns how many statements identical to the fingerprint
// exist at the file or repo level.
func (ix *Index) StatementCount(level map[string]map[string]int, outer, fp string) int {
	if mm, ok := level[outer]; ok {
		return mm[fp]
	}
	return 0
}

// PatternAt returns the pattern stats at a given level (zero stats when
// absent).
func (ix *Index) patternAt(level map[string]map[string]*PatternStats, outer, key string) PatternStats {
	if mm, ok := level[outer]; ok {
		if st, ok := mm[key]; ok {
			return *st
		}
	}
	return PatternStats{}
}

// Violation bundles what ϕ needs about one violation occurrence.
type Violation struct {
	Repo        string
	File        string
	Fingerprint string
	NumPaths    int
	Pattern     *pattern.Pattern
	Detail      pattern.Violation
}

// Vector computes the 17 features of Table 1 for a violation.
func (ix *Index) Vector(v Violation, pairs *confusion.PairSet) []float64 {
	p := v.Pattern
	k := p.Key()
	filePS := ix.patternAt(ix.filePat, v.File, k)
	repoPS := ix.patternAt(ix.repoPat, v.Repo, k)
	dataPS := PatternStats{}
	if st, ok := ix.dataPat[k]; ok {
		dataPS = *st
	} else {
		// Fall back to the mining-time statistics stored on the pattern.
		dataPS = PatternStats{Matches: p.MatchCount, Satisfactions: p.SatisfyCount}
	}

	f := make([]float64, Count)
	f[0] = float64(v.NumPaths)
	f[1] = float64(ix.StatementCount(ix.fileStmts, v.File, v.Fingerprint))
	f[2] = float64(ix.StatementCount(ix.repoStmts, v.Repo, v.Fingerprint))
	f[3] = filePS.Rate()
	f[4] = repoPS.Rate()
	f[5] = dataPS.Rate()
	f[6] = float64(filePS.Violations())
	f[7] = float64(repoPS.Violations())
	f[8] = float64(dataPS.Violations())
	f[9] = float64(filePS.Satisfactions)
	f[10] = float64(repoPS.Satisfactions)
	f[11] = float64(dataPS.Satisfactions)
	if TargetsFunctionName(p) {
		f[12] = 1
	}
	f[13] = float64(len(p.Condition))
	denom := v.NumPaths - len(p.Deduction)
	if denom > 0 {
		f[14] = float64(len(p.Condition)) / float64(denom)
	}
	f[15] = float64(textutil.EditDistance(v.Detail.Original, v.Detail.Suggested))
	if pairs != nil && pairs.Contains(v.Detail.Original, v.Detail.Suggested) {
		f[16] = 1
	}
	return f
}

// TargetsFunctionName reports whether the pattern's deduction names a
// function/method rather than an object (feature 13): the deduction path
// descends into a call's callee position.
func TargetsFunctionName(p *pattern.Pattern) bool {
	if len(p.Deduction) == 0 {
		return false
	}
	for _, e := range p.Deduction[0].Prefix {
		if (e.Value == "Call" || e.Value == "New") && e.Index == 0 {
			return true
		}
	}
	return false
}
