package features

import (
	"testing"

	"namer/internal/confusion"
	"namer/internal/namepath"
	"namer/internal/pattern"
)

func mkPath(s string) namepath.Path {
	p, ok := namepath.ParsePath(s)
	if !ok {
		panic("bad path " + s)
	}
	return p
}

func callPattern() *pattern.Pattern {
	return &pattern.Pattern{
		Type: pattern.ConfusingWord,
		Condition: []namepath.Path{
			mkPath("NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 self"),
			mkPath("NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM"),
		},
		Deduction: []namepath.Path{
			mkPath("NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 Equal"),
		},
		MatchCount:   100,
		SatisfyCount: 90,
	}
}

func objectPattern() *pattern.Pattern {
	return &pattern.Pattern{
		Type: pattern.Consistency,
		Deduction: []namepath.Path{
			mkPath("Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 ϵ"),
			mkPath("Assign 1 NameLoad 0 NumST(1) 0 ϵ"),
		},
	}
}

func TestVectorShape(t *testing.T) {
	ix := NewIndex()
	p := callPattern()
	pairs := confusion.NewPairSet()
	pairs.Add("True", "Equal")

	// Populate index: same statement twice in the file, 3 times in repo.
	ix.AddStatement("repo1", "f.py", "fp1")
	ix.AddStatement("repo1", "f.py", "fp1")
	ix.AddStatement("repo1", "g.py", "fp1")
	// Pattern observed: 4 matches, 3 satisfied in file f.py.
	for i := 0; i < 3; i++ {
		ix.AddObservation("repo1", "f.py", p, true)
	}
	ix.AddObservation("repo1", "f.py", p, false)

	v := Violation{
		Repo: "repo1", File: "f.py", Fingerprint: "fp1", NumPaths: 5,
		Pattern: p,
		Detail:  pattern.Violation{Original: "True", Suggested: "Equal"},
	}
	f := ix.Vector(v, pairs)
	if len(f) != Count {
		t.Fatalf("vector dim = %d, want %d", len(f), Count)
	}
	checks := map[int]float64{
		0:  5,         // num paths
		1:  2,         // identical statements in file
		2:  3,         // identical in repo
		3:  0.75,      // file satisfaction rate
		4:  0.75,      // repo rate (same observations)
		6:  1,         // file violations
		9:  3,         // file satisfactions
		12: 1,         // targets function name
		13: 2,         // condition size
		14: 2.0 / 4.0, // match ratio |C| / (numPaths - |D|)
		15: 4,         // edit distance True -> Equal
		16: 1,         // confusing pair
	}
	for idx, want := range checks {
		if f[idx] != want {
			t.Errorf("feature %d (%s) = %g, want %g", idx, Names[idx], f[idx], want)
		}
	}
}

func TestDatasetFallbackToMiningStats(t *testing.T) {
	ix := NewIndex()
	p := callPattern()
	v := Violation{Repo: "r", File: "f", Fingerprint: "x", NumPaths: 4, Pattern: p}
	f := ix.Vector(v, nil)
	if f[5] != 0.9 { // 90/100 from mining stats
		t.Errorf("dataset satisfaction rate = %g, want 0.9", f[5])
	}
	if f[8] != 10 { // 100-90 violations
		t.Errorf("dataset violations = %g, want 10", f[8])
	}
	if f[11] != 90 {
		t.Errorf("dataset satisfactions = %g, want 90", f[11])
	}
}

func TestTargetsFunctionName(t *testing.T) {
	if !TargetsFunctionName(callPattern()) {
		t.Error("call-position deduction should target a function name")
	}
	if TargetsFunctionName(objectPattern()) {
		t.Error("attribute-store deduction should target an object name")
	}
	if TargetsFunctionName(&pattern.Pattern{}) {
		t.Error("empty pattern should not target a function")
	}
}

func TestNamesComplete(t *testing.T) {
	for i, n := range Names {
		if n == "" {
			t.Errorf("feature %d has no name", i)
		}
	}
}

func TestObservationLevelsIndependent(t *testing.T) {
	ix := NewIndex()
	p := callPattern()
	ix.AddObservation("repoA", "a.py", p, true)
	ix.AddObservation("repoB", "b.py", p, false)
	vA := Violation{Repo: "repoA", File: "a.py", Fingerprint: "z", NumPaths: 3, Pattern: p}
	fA := ix.Vector(vA, nil)
	if fA[3] != 1.0 { // file a.py: 1 match, 1 satisfied
		t.Errorf("file rate = %g, want 1", fA[3])
	}
	if fA[5] != 0.5 { // dataset: 2 matches, 1 satisfied
		t.Errorf("dataset rate = %g, want 0.5", fA[5])
	}
	vB := Violation{Repo: "repoB", File: "b.py", Fingerprint: "z", NumPaths: 3, Pattern: p}
	fB := ix.Vector(vB, nil)
	if fB[3] != 0 {
		t.Errorf("file b rate = %g, want 0", fB[3])
	}
	if fB[6] != 1 {
		t.Errorf("file b violations = %g, want 1", fB[6])
	}
}
