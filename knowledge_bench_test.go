package namer

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/knowledge"
)

// knowledgeBenchArtifacts mines one representative system (patterns +
// pairs + trained classifier) and saves it in both formats, shared by all
// knowledge benches in the run.
var (
	knowledgeOnce sync.Once
	knowledgeDir  string
	knowledgeErr  error
)

func knowledgeBenchPaths() (jsonPath, binPath string, err error) {
	knowledgeOnce.Do(func() {
		opts := benchOptions(ast.Python)
		c := corpus.Generate(opts.Corpus)
		sys := core.NewSystem(opts.System)
		sys.MinePairs(c.Commits)
		files := benchCorpusFiles(c)
		sys.ProcessFiles(files)
		sys.MinePatterns()
		violations := sys.Scan()

		// Train a classifier from ground truth so the artifact carries the
		// full state (the serving deployment ships trained knowledge).
		var vs []*core.Violation
		var ys []int
		for i, v := range violations {
			if i >= 80 {
				break
			}
			vs = append(vs, v)
			if sev, _ := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original); sev != 0 {
				ys = append(ys, 1)
			} else {
				ys = append(ys, 0)
			}
		}
		if len(vs) > 0 {
			sys.TrainClassifier(vs, ys)
		}

		knowledgeDir, knowledgeErr = os.MkdirTemp("", "namer-knowledge-bench-*")
		if knowledgeErr != nil {
			return
		}
		if knowledgeErr = sys.SaveKnowledge(filepath.Join(knowledgeDir, "k.json")); knowledgeErr != nil {
			return
		}
		knowledgeErr = sys.SaveKnowledge(filepath.Join(knowledgeDir, "k.bin"))
	})
	if knowledgeErr != nil {
		return "", "", knowledgeErr
	}
	return filepath.Join(knowledgeDir, "k.json"), filepath.Join(knowledgeDir, "k.bin"), nil
}

func benchKnowledgeLoad(b *testing.B, path string) {
	b.Helper()
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(info.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.DefaultConfig(ast.Python))
		if err := sys.LoadKnowledge(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKnowledgeLoadJSON(b *testing.B) {
	jsonPath, _, err := knowledgeBenchPaths()
	if err != nil {
		b.Fatal(err)
	}
	benchKnowledgeLoad(b, jsonPath)
}

func BenchmarkKnowledgeLoadBinary(b *testing.B) {
	_, binPath, err := knowledgeBenchPaths()
	if err != nil {
		b.Fatal(err)
	}
	benchKnowledgeLoad(b, binPath)
}

// knowledgeBenchFile is the BENCH_knowledge.json schema: the size and
// load-time comparison between the JSON debug format and the binary
// serving format, tracked commit over commit.
type knowledgeBenchFile struct {
	CPUs          int     `json:"cpus"`
	Corpus        string  `json:"corpus"`
	Patterns      int     `json:"patterns"`
	Pairs         int     `json:"pairs"`
	Classifier    bool    `json:"classifier"`
	JSONBytes     int64   `json:"json_bytes"`
	BinaryBytes   int64   `json:"binary_bytes"`
	SizeRatio     float64 `json:"size_ratio"`
	JSONLoadNs    int64   `json:"json_load_ns_per_op"`
	BinaryLoadNs  int64   `json:"binary_load_ns_per_op"`
	LoadSpeedup   float64 `json:"load_speedup"`
	JSONAllocs    int64   `json:"json_allocs_per_op"`
	BinaryAllocs  int64   `json:"binary_allocs_per_op"`
	FormatVersion int     `json:"binary_format_version"`
}

// TestWriteKnowledgeBenchJSON snapshots the JSON-vs-binary comparison
// into the file named by BENCH_KNOWLEDGE_JSON (make bench writes
// BENCH_knowledge.json); without the env var it is a no-op.
func TestWriteKnowledgeBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_KNOWLEDGE_JSON")
	if out == "" {
		t.Skip("set BENCH_KNOWLEDGE_JSON=<file> to record knowledge benchmarks (make bench)")
	}
	jsonPath, binPath, err := knowledgeBenchPaths()
	if err != nil {
		t.Fatal(err)
	}
	jinfo, err := os.Stat(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	binfo, err := os.Stat(binPath)
	if err != nil {
		t.Fatal(err)
	}
	k, err := knowledge.Load(binPath)
	if err != nil {
		t.Fatal(err)
	}

	jres := testing.Benchmark(func(b *testing.B) { benchKnowledgeLoad(b, jsonPath) })
	bres := testing.Benchmark(func(b *testing.B) { benchKnowledgeLoad(b, binPath) })

	opts := benchOptions(ast.Python)
	file := knowledgeBenchFile{
		CPUs: runtime.NumCPU(),
		Corpus: fmt.Sprintf("python synthetic, %d repos x %d files",
			opts.Corpus.Repos, opts.Corpus.FilesPerRepo),
		Patterns:      len(k.Patterns),
		Pairs:         k.Pairs.Len(),
		Classifier:    k.Classifier != nil,
		JSONBytes:     jinfo.Size(),
		BinaryBytes:   binfo.Size(),
		SizeRatio:     float64(jinfo.Size()) / float64(binfo.Size()),
		JSONLoadNs:    jres.NsPerOp(),
		BinaryLoadNs:  bres.NsPerOp(),
		LoadSpeedup:   float64(jres.NsPerOp()) / float64(bres.NsPerOp()),
		JSONAllocs:    jres.AllocsPerOp(),
		BinaryAllocs:  bres.AllocsPerOp(),
		FormatVersion: knowledge.Version,
	}
	if file.SizeRatio < 3 {
		t.Errorf("binary artifact only %.2fx smaller than JSON (want >= 3x)", file.SizeRatio)
	}
	if file.LoadSpeedup < 1 {
		t.Errorf("binary load slower than JSON (%.2fx)", file.LoadSpeedup)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1fx smaller, %.1fx faster load", out, file.SizeRatio, file.LoadSpeedup)
}
