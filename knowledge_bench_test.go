package namer

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"namer/internal/ast"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/knowledge"
)

// knowledgeBenchArtifacts mines one representative system (patterns +
// pairs + trained classifier) and saves it in all three on-disk formats
// (JSON debug, v1 compact binary, v2 flat binary), shared by all
// knowledge benches in the run.
var (
	knowledgeOnce sync.Once
	knowledgeDir  string
	knowledgeErr  error
)

func knowledgeBenchPaths() (jsonPath, v1Path, v2Path string, err error) {
	knowledgeOnce.Do(func() {
		opts := benchOptions(ast.Python)
		c := corpus.Generate(opts.Corpus)
		sys := core.NewSystem(opts.System)
		sys.MinePairs(c.Commits)
		files := benchCorpusFiles(c)
		sys.ProcessFiles(files)
		sys.MinePatterns()
		violations := sys.Scan()

		// Train a classifier from ground truth so the artifact carries the
		// full state (the serving deployment ships trained knowledge).
		var vs []*core.Violation
		var ys []int
		for i, v := range violations {
			if i >= 80 {
				break
			}
			vs = append(vs, v)
			if sev, _ := c.Judge(v.Stmt.Repo, v.Stmt.Path, v.Stmt.Line, v.Detail.Original); sev != 0 {
				ys = append(ys, 1)
			} else {
				ys = append(ys, 0)
			}
		}
		if len(vs) > 0 {
			sys.TrainClassifier(vs, ys)
		}

		knowledgeDir, knowledgeErr = os.MkdirTemp("", "namer-knowledge-bench-*")
		if knowledgeErr != nil {
			return
		}
		if knowledgeErr = sys.SaveKnowledge(filepath.Join(knowledgeDir, "k.json")); knowledgeErr != nil {
			return
		}
		// SaveKnowledge writes the current (v2) binary format; the legacy
		// v1 encoding needs the artifact and the explicit writer.
		if knowledgeErr = sys.SaveKnowledge(filepath.Join(knowledgeDir, "k.bin")); knowledgeErr != nil {
			return
		}
		k, err := sys.ExportKnowledge()
		if err != nil {
			knowledgeErr = err
			return
		}
		knowledgeErr = knowledge.SaveV1(filepath.Join(knowledgeDir, "k.v1.bin"), k)
	})
	if knowledgeErr != nil {
		return "", "", "", knowledgeErr
	}
	return filepath.Join(knowledgeDir, "k.json"),
		filepath.Join(knowledgeDir, "k.v1.bin"),
		filepath.Join(knowledgeDir, "k.bin"), nil
}

// benchKnowledgeLoad measures the full import path: read the file, decode
// into an Artifact, and install it into a fresh System (what namer-serve
// does at startup and on every hot reload).
func benchKnowledgeLoad(b *testing.B, path string) {
	b.Helper()
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(info.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.DefaultConfig(ast.Python))
		if err := sys.LoadKnowledge(path); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKnowledgeOpenV2 measures the zero-copy open path: read the file
// and validate it into a View without materializing patterns or strings.
// Allocations must stay O(1) in artifact size (the read buffer plus the
// View itself, regardless of pattern count).
func benchKnowledgeOpenV2(b *testing.B, path string) {
	b.Helper()
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(info.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := knowledge.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if v.NumPatterns() == 0 {
			b.Fatal("empty view")
		}
	}
}

func BenchmarkKnowledgeLoadJSON(b *testing.B) {
	jsonPath, _, _, err := knowledgeBenchPaths()
	if err != nil {
		b.Fatal(err)
	}
	benchKnowledgeLoad(b, jsonPath)
}

func BenchmarkKnowledgeLoadBinaryV1(b *testing.B) {
	_, v1Path, _, err := knowledgeBenchPaths()
	if err != nil {
		b.Fatal(err)
	}
	benchKnowledgeLoad(b, v1Path)
}

func BenchmarkKnowledgeLoadBinary(b *testing.B) {
	_, _, v2Path, err := knowledgeBenchPaths()
	if err != nil {
		b.Fatal(err)
	}
	benchKnowledgeLoad(b, v2Path)
}

func BenchmarkKnowledgeOpenV2(b *testing.B) {
	_, _, v2Path, err := knowledgeBenchPaths()
	if err != nil {
		b.Fatal(err)
	}
	benchKnowledgeOpenV2(b, v2Path)
}

// knowledgeBenchFile is the BENCH_knowledge.json schema: size and
// load-time comparison across the JSON debug format, the legacy v1
// binary, and the current v2 flat binary, plus the v2 zero-copy open
// numbers, tracked commit over commit.
type knowledgeBenchFile struct {
	CPUs       int    `json:"cpus"`
	Corpus     string `json:"corpus"`
	Patterns   int    `json:"patterns"`
	Pairs      int    `json:"pairs"`
	Classifier bool   `json:"classifier"`

	JSONBytes   int64   `json:"json_bytes"`
	V1Bytes     int64   `json:"v1_bytes"`
	BinaryBytes int64   `json:"binary_bytes"` // v2, the current writer
	SizeRatio   float64 `json:"size_ratio"`   // json / v2
	V1SizeRatio float64 `json:"v1_size_ratio"`
	V2V1Ratio   float64 `json:"v2_v1_size_ratio"`

	JSONLoadNs   int64   `json:"json_load_ns_per_op"`
	V1LoadNs     int64   `json:"v1_load_ns_per_op"`
	BinaryLoadNs int64   `json:"binary_load_ns_per_op"` // v2 full import
	LoadSpeedup  float64 `json:"load_speedup"`          // json / v2
	JSONAllocs   int64   `json:"json_allocs_per_op"`
	V1Allocs     int64   `json:"v1_allocs_per_op"`
	BinaryAllocs int64   `json:"binary_allocs_per_op"`

	V2OpenNs          int64   `json:"v2_open_ns_per_op"`
	V2OpenAllocs      int64   `json:"v2_open_allocs_per_op"`
	OpenSpeedupVsV1   float64 `json:"open_speedup_vs_v1_load"`
	OpenSpeedupVsLoad float64 `json:"open_speedup_vs_v2_load"`

	FormatVersion int `json:"binary_format_version"`
}

// TestWriteKnowledgeBenchJSON snapshots the format comparison into the
// file named by BENCH_KNOWLEDGE_JSON (make bench writes
// BENCH_knowledge.json); without the env var it is a no-op.
func TestWriteKnowledgeBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_KNOWLEDGE_JSON")
	if out == "" {
		t.Skip("set BENCH_KNOWLEDGE_JSON=<file> to record knowledge benchmarks (make bench)")
	}
	jsonPath, v1Path, v2Path, err := knowledgeBenchPaths()
	if err != nil {
		t.Fatal(err)
	}
	jinfo, err := os.Stat(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	v1info, err := os.Stat(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	v2info, err := os.Stat(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	k, err := knowledge.Load(v2Path)
	if err != nil {
		t.Fatal(err)
	}

	jres := testing.Benchmark(func(b *testing.B) { benchKnowledgeLoad(b, jsonPath) })
	v1res := testing.Benchmark(func(b *testing.B) { benchKnowledgeLoad(b, v1Path) })
	v2res := testing.Benchmark(func(b *testing.B) { benchKnowledgeLoad(b, v2Path) })
	ores := testing.Benchmark(func(b *testing.B) { benchKnowledgeOpenV2(b, v2Path) })

	opts := benchOptions(ast.Python)
	file := knowledgeBenchFile{
		CPUs: runtime.NumCPU(),
		Corpus: fmt.Sprintf("python synthetic, %d repos x %d files",
			opts.Corpus.Repos, opts.Corpus.FilesPerRepo),
		Patterns:   len(k.Patterns),
		Pairs:      k.Pairs.Len(),
		Classifier: k.Classifier != nil,

		JSONBytes:   jinfo.Size(),
		V1Bytes:     v1info.Size(),
		BinaryBytes: v2info.Size(),
		SizeRatio:   float64(jinfo.Size()) / float64(v2info.Size()),
		V1SizeRatio: float64(jinfo.Size()) / float64(v1info.Size()),
		V2V1Ratio:   float64(v2info.Size()) / float64(v1info.Size()),

		JSONLoadNs:   jres.NsPerOp(),
		V1LoadNs:     v1res.NsPerOp(),
		BinaryLoadNs: v2res.NsPerOp(),
		LoadSpeedup:  float64(jres.NsPerOp()) / float64(v2res.NsPerOp()),
		JSONAllocs:   jres.AllocsPerOp(),
		V1Allocs:     v1res.AllocsPerOp(),
		BinaryAllocs: v2res.AllocsPerOp(),

		V2OpenNs:          ores.NsPerOp(),
		V2OpenAllocs:      ores.AllocsPerOp(),
		OpenSpeedupVsV1:   float64(v1res.NsPerOp()) / float64(ores.NsPerOp()),
		OpenSpeedupVsLoad: float64(v2res.NsPerOp()) / float64(ores.NsPerOp()),

		FormatVersion: knowledge.Version,
	}
	// v2 trades disk compactness for O(1) open: it must still beat the
	// JSON debug format, while v1 keeps the tight archival bound.
	if file.SizeRatio < 1.5 {
		t.Errorf("v2 artifact only %.2fx smaller than JSON (want >= 1.5x)", file.SizeRatio)
	}
	if file.V1SizeRatio < 3 {
		t.Errorf("v1 artifact only %.2fx smaller than JSON (want >= 3x)", file.V1SizeRatio)
	}
	if file.LoadSpeedup < 1 {
		t.Errorf("v2 load slower than JSON (%.2fx)", file.LoadSpeedup)
	}
	// The zero-copy open is the point of the format: constant allocations
	// (read buffer + View, independent of pattern count) and an order of
	// magnitude faster than decoding the v1 tree.
	if file.OpenSpeedupVsV1 < 10 {
		t.Errorf("v2 open only %.1fx faster than v1 load (want >= 10x)", file.OpenSpeedupVsV1)
	}
	if file.V2OpenAllocs > 16 {
		t.Errorf("v2 open allocates %d times per op (want O(1), <= 16)", file.V2OpenAllocs)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: v2 %.1fx smaller than JSON, open %.1fx faster than v1 load (%d allocs)",
		out, file.SizeRatio, file.OpenSpeedupVsV1, file.V2OpenAllocs)
}
