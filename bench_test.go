// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index), plus the
// ablation benches of DESIGN.md §6 and micro-benchmarks of the hot
// substrates. Run with:
//
//	go test -bench=. -benchmem
package namer

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"namer/internal/ast"
	"namer/internal/astplus"
	"namer/internal/core"
	"namer/internal/corpus"
	"namer/internal/datalog"
	"namer/internal/driver"
	"namer/internal/eval"
	"namer/internal/fptree"
	"namer/internal/golang"
	"namer/internal/javalang"
	"namer/internal/mining"
	"namer/internal/ml"
	"namer/internal/namepath"
	"namer/internal/pattern"
	"namer/internal/pointsto"
	"namer/internal/pylang"
	"namer/internal/subtoken"
	"namer/internal/textutil"
)

// benchOptions returns a small corpus configuration so table benches
// finish quickly while exercising the full pipeline.
func benchOptions(lang ast.Language) eval.Options {
	opts := eval.DefaultOptions(lang)
	opts.Corpus.Repos = 12
	opts.Corpus.FilesPerRepo = 4
	opts.System.Mining.MinPatternCount = opts.Corpus.Repos * opts.Corpus.FilesPerRepo / 3
	opts.TrainSize = 40
	opts.TestSize = 100
	return opts
}

// cached runs share one evaluation environment per language.
var (
	runOnce sync.Once
	runPy   *eval.Run
	runJava *eval.Run
)

func sharedRuns() (*eval.Run, *eval.Run) {
	runOnce.Do(func() {
		runPy = eval.NewRun(benchOptions(ast.Python))
		runJava = eval.NewRun(benchOptions(ast.Java))
	})
	return runPy, runJava
}

// --- Figure 2: the overview pipeline ---

const figure2Src = `class TestPicture(TestCase):
    def test_angle_picture(self):
        rotated_picture_name = "IMG_2259.jpg"
        for picture in self.slide.pictures:
            if picture.relative_path == rotated_picture_name:
                picture = self.slide.pictures[0]
                self.assertTrue(picture.rotate_angle, 90)
                break
`

func BenchmarkFigure2Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		root, err := pylang.Parse(figure2Src)
		if err != nil {
			b.Fatal(err)
		}
		res := pointsto.AnalyzeFile(root, ast.Python)
		for _, stmt := range ast.Statements(root) {
			plus := astplus.Transform(stmt, res.OriginOf)
			namepath.Extract(plus, 10)
		}
	}
}

// --- Figure 3: FP-tree mining ---

func BenchmarkFigure3FPTree(b *testing.B) {
	txs := [][]int{{1, 2}, {1, 3, 5}, {1, 3, 4}, {1, 3, 4, 6}}
	for i := 0; i < b.N; i++ {
		tree := fptree.New()
		for j := 0; j < 64; j++ {
			tree.Update(txs[j%len(txs)])
		}
		count := 0
		tree.Walk(func(n *fptree.Node, stack []int) {
			if n.IsLast {
				count++
			}
		})
		if count != 4 {
			b.Fatalf("patterns = %d", count)
		}
	}
}

// --- Tables 2 and 5: precision and ablations ---

func BenchmarkTable2PythonPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := eval.NewRun(benchOptions(ast.Python))
		rows := run.PrecisionTable()
		if len(rows) != 4 {
			b.Fatal("table shape")
		}
	}
}

func BenchmarkTable5JavaPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := eval.NewRun(benchOptions(ast.Java))
		rows := run.PrecisionTable()
		if len(rows) != 4 {
			b.Fatal("table shape")
		}
	}
}

// --- Table 4: per-pattern-type breakdown ---

func BenchmarkTable4PatternBreakdown(b *testing.B) {
	py, _ := sharedRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := py.PatternBreakdown(100)
		if len(rows) != 2 {
			b.Fatal("breakdown shape")
		}
	}
}

// --- Tables 7 and 8: user study ---

func BenchmarkTable8UserStudy(b *testing.B) {
	py, _ := sharedRuns()
	items := py.UserStudyItems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.SimulateUserStudy(items, 7, int64(i))
	}
}

// --- Table 9: classifier feature weights ---

func BenchmarkTable9FeatureWeights(b *testing.B) {
	py, _ := sharedRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := py.FeatureWeightTable(); len(rows) != 4 {
			b.Fatal("weight table shape")
		}
	}
}

// --- Tables 10 and 11: neural baselines (includes §5.6 synthetic accuracy) ---

func neuralBenchOptions() eval.NeuralOptions {
	return eval.NeuralOptions{
		Dim: 12, Steps: 1, Layers: 1, Epochs: 1,
		TrainSamples: 60, TestSamples: 30, Seed: 5,
	}
}

func BenchmarkTable10NeuralPython(b *testing.B) {
	py, _ := sharedRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := py.NeuralComparison(neuralBenchOptions(), 20); len(res) != 2 {
			b.Fatal("comparison shape")
		}
	}
}

func BenchmarkTable11NeuralJava(b *testing.B) {
	_, jv := sharedRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := jv.NeuralComparison(neuralBenchOptions(), 20); len(res) != 2 {
			b.Fatal("comparison shape")
		}
	}
}

// --- §5.1: speed of Namer (ms per file, the 20ms/39ms numbers) ---

func BenchmarkAnalyzeFilePython(b *testing.B) {
	c := corpus.Generate(corpus.Config{Lang: ast.Python, Seed: 3, Repos: 1, FilesPerRepo: 1})
	f := c.Repos[0].Files[0]
	sys := core.NewSystem(core.DefaultConfig(ast.Python))
	in := &core.InputFile{Repo: "r", Path: f.Path, Source: f.Source, Root: f.Root}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ProcessFile(in)
	}
}

func BenchmarkAnalyzeFileJava(b *testing.B) {
	c := corpus.Generate(corpus.Config{Lang: ast.Java, Seed: 3, Repos: 1, FilesPerRepo: 1})
	f := c.Repos[0].Files[0]
	sys := core.NewSystem(core.DefaultConfig(ast.Java))
	in := &core.InputFile{Repo: "r", Path: f.Path, Source: f.Source, Root: f.Root}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ProcessFile(in)
	}
}

// --- §5.2/§5.3: mining statistics ---

// BenchmarkMinePatterns measures the mining stage itself (pass-1 counting,
// sharded FP-tree growth, pattern generation, pruning) over an already
// processed corpus, for the serial reference path and the all-CPU path.
func BenchmarkMinePatterns(b *testing.B) {
	opts := benchOptions(ast.Python)
	c := corpus.Generate(opts.Corpus)
	files := benchCorpusFiles(c)
	for _, v := range benchScanVariants {
		cfg := opts.System
		cfg.Parallelism = v.parallelism
		sys := core.NewSystem(cfg)
		sys.MinePairs(c.Commits)
		sys.ProcessFiles(files)
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys.MinePatterns()
				if len(sys.Patterns) == 0 {
					b.Fatal("no patterns")
				}
			}
		})
	}
}

// benchCorpusFiles materializes the bench corpus as input files.
func benchCorpusFiles(c *corpus.Corpus) []*core.InputFile {
	var files []*core.InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &core.InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	return files
}

// benchScanVariants names the serial reference path and the all-CPU
// parallel path; the outputs are asserted byte-identical by
// core.TestParallelPipelineMatchesSerial, so these benches measure pure
// speedup.
var benchScanVariants = []struct {
	name        string
	parallelism int
}{
	{"serial", 1},
	{"parallel", 0},
}

// --- Scan & PruneUncommon: the corpus-scale hot paths ---

func BenchmarkScan(b *testing.B) {
	opts := benchOptions(ast.Python)
	c := corpus.Generate(opts.Corpus)
	files := benchCorpusFiles(c)
	for _, v := range benchScanVariants {
		cfg := opts.System
		cfg.Parallelism = v.parallelism
		sys := core.NewSystem(cfg)
		sys.MinePairs(c.Commits)
		sys.ProcessFiles(files)
		sys.MinePatterns()
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if vs := sys.Scan(); len(vs) == 0 {
					b.Fatal("no violations")
				}
			}
		})
	}
}

func BenchmarkPruneUncommon(b *testing.B) {
	opts := benchOptions(ast.Python)
	c := corpus.Generate(opts.Corpus)
	files := benchCorpusFiles(c)
	sys := core.NewSystem(opts.System)
	sys.MinePairs(c.Commits)
	sys.ProcessFiles(files)
	// Recover an unpruned candidate set by mining with a ratio low enough
	// that PruneUncommon keeps everything.
	mcfg := opts.System.Mining
	mcfg.MinSatisfactionRatio = 1e-9
	var stmts []*pattern.Statement
	for _, ps := range sys.Stmts {
		stmts = append(stmts, ps.PS)
	}
	candidates := mining.MinePatterns(stmts, pattern.Consistency, nil, mcfg)
	if len(candidates) == 0 {
		b.Fatal("no candidate patterns")
	}
	for _, v := range benchScanVariants {
		workers := v.parallelism
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if out := mining.PruneUncommon(candidates, stmts, 0.8, workers); len(out) == 0 {
					b.Fatal("all candidates pruned")
				}
			}
		})
	}
}

// --- BENCH_mining.json: the mining perf trajectory (make bench) ---

// miningBenchRecord is one row of BENCH_mining.json.
type miningBenchRecord struct {
	Name         string `json:"name"`
	NsPerOp      int64  `json:"ns_per_op"`
	AllocsPerOp  int64  `json:"allocs_per_op,omitempty"`
	BytesPerOp   int64  `json:"bytes_per_op,omitempty"`
	TreeNodes    int    `json:"tree_nodes,omitempty"`
	Transactions int    `json:"transactions,omitempty"`

	// Driver-mode rows: shard count, the map/reduce wall split, the
	// summed job CPU time, the peak worker RSS, and the per-shard
	// resource breakdown from the driver's rusage accounting.
	Shards     int                `json:"shards,omitempty"`
	MapNs      int64              `json:"map_ns,omitempty"`
	ReduceNs   int64              `json:"reduce_ns,omitempty"`
	CPUNs      int64              `json:"cpu_ns,omitempty"`
	MaxRSSKB   int64              `json:"max_rss_kb,omitempty"`
	ShardUsage []shardUsageRecord `json:"shard_usage,omitempty"`
}

// shardUsageRecord is one shard's resource row inside a Driver record.
type shardUsageRecord struct {
	Shard      int   `json:"shard"`
	WallNs     int64 `json:"wall_ns"`
	CPUNs      int64 `json:"cpu_ns"`
	MaxRSSKB   int64 `json:"max_rss_kb"`
	AllocBytes int64 `json:"alloc_bytes"`
}

type miningBenchFile struct {
	CPUs    int                 `json:"cpus"`
	Corpus  string              `json:"corpus"`
	Results []miningBenchRecord `json:"results"`
}

// TestWriteMiningBenchJSON records the BenchmarkMinePatterns and
// BenchmarkScan variants into the file named by BENCH_JSON (ns/op,
// allocs/op, FP-tree node count), so the perf trajectory of the mining
// pipeline is tracked commit over commit. `make bench` writes
// BENCH_mining.json; without the env var the test is a no-op.
func TestWriteMiningBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<file> to record mining benchmarks (make bench)")
	}
	opts := benchOptions(ast.Python)
	c := corpus.Generate(opts.Corpus)
	files := benchCorpusFiles(c)
	file := miningBenchFile{
		CPUs: runtime.NumCPU(),
		Corpus: fmt.Sprintf("python synthetic, %d repos x %d files",
			opts.Corpus.Repos, opts.Corpus.FilesPerRepo),
	}
	for _, v := range benchScanVariants {
		cfg := opts.System
		cfg.Parallelism = v.parallelism
		sys := core.NewSystem(cfg)
		sys.MinePairs(c.Commits)
		sys.ProcessFiles(files)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys.MinePatterns()
			}
		})
		nodes, txs := 0, 0
		for _, ms := range sys.MiningStats {
			nodes += ms.TreeNodes
			txs += ms.Transactions
		}
		file.Results = append(file.Results, miningBenchRecord{
			Name:         "MinePatterns/" + v.name,
			NsPerOp:      res.NsPerOp(),
			AllocsPerOp:  res.AllocsPerOp(),
			BytesPerOp:   res.AllocedBytesPerOp(),
			TreeNodes:    nodes,
			Transactions: txs,
		})
		scan := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys.Scan()
			}
		})
		file.Results = append(file.Results, miningBenchRecord{
			Name:        "Scan/" + v.name,
			NsPerOp:     scan.NsPerOp(),
			AllocsPerOp: scan.AllocsPerOp(),
			BytesPerOp:  scan.AllocedBytesPerOp(),
		})
	}
	// Driver-mode rows: the same corpus mined through the map/reduce
	// driver, recording end-to-end wall clock and the merged shard-tree
	// shapes so the distributed path's trajectory is tracked alongside
	// the in-process one.
	corpusDir := t.TempDir()
	if err := c.WriteTo(corpusDir); err != nil {
		t.Fatal(err)
	}
	for _, nshards := range []int{2, runtime.NumCPU()} {
		cfg := opts.System
		cfg.Mining.MinPatternCount = 0 // auto-scale post-map, like namer-mine -driver
		start := time.Now()
		_, stats, err := driver.Run(context.Background(), driver.Options{
			CorpusDir:     corpusDir,
			Config:        cfg,
			Shards:        nshards,
			CheckpointDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		nodes, txs := 0, 0
		for _, ms := range stats.Mining {
			nodes += ms.TreeNodes
			txs += ms.Transactions
		}
		var cpu int64
		var peakRSS int64
		var usage []shardUsageRecord
		for _, u := range stats.Usage {
			cpu += u.CPU.Nanoseconds()
			if u.MaxRSSKB > peakRSS {
				peakRSS = u.MaxRSSKB
			}
			usage = append(usage, shardUsageRecord{
				Shard:      u.Shard,
				WallNs:     u.Wall.Nanoseconds(),
				CPUNs:      u.CPU.Nanoseconds(),
				MaxRSSKB:   u.MaxRSSKB,
				AllocBytes: u.AllocBytes,
			})
		}
		file.Results = append(file.Results, miningBenchRecord{
			Name:         fmt.Sprintf("Driver/shards=%d", nshards),
			NsPerOp:      wall.Nanoseconds(),
			TreeNodes:    nodes,
			Transactions: txs,
			Shards:       stats.Shards,
			MapNs:        stats.MapWall.Nanoseconds(),
			ReduceNs:     stats.ReduceWall.Nanoseconds(),
			CPUNs:        cpu,
			MaxRSSKB:     peakRSS,
			ShardUsage:   usage,
		})
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d results)", out, len(file.Results))
}

// --- §5.1/§5.2: cross-validation and model selection ---

func BenchmarkCrossValidation(b *testing.B) {
	py, _ := sharedRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		py.CrossValidation(5)
	}
}

func BenchmarkModelSelection(b *testing.B) {
	py, _ := sharedRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, _ := py.CrossValidation(3)
		if best == "" {
			b.Fatal("no model selected")
		}
	}
}

// --- Ablation benches (DESIGN.md §6) ---

func BenchmarkAblationNoClassifier(b *testing.B) {
	opts := benchOptions(ast.Python)
	for i := 0; i < b.N; i++ {
		run := eval.NewRun(opts)
		// Raw pattern matching: every violation is a report (w/o C).
		n := 0
		for range run.Violations {
			n++
		}
		if n == 0 {
			b.Fatal("no violations")
		}
	}
}

func BenchmarkAblationNoAnalysis(b *testing.B) {
	opts := benchOptions(ast.Python)
	opts.System.UseAnalysis = false
	for i := 0; i < b.N; i++ {
		run := eval.NewRun(opts)
		_ = run.Violations
	}
}

func BenchmarkPointsToKSweep(b *testing.B) {
	c := corpus.Generate(corpus.Config{Lang: ast.Python, Seed: 5, Repos: 1, FilesPerRepo: 2})
	f := c.Repos[0].Files[0]
	for _, k := range []int{0, 1, 2, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pointsto.Analyze(f.Root, ast.Python, pointsto.Options{K: k, MaxAvgContexts: 8})
			}
		})
	}
}

func BenchmarkMiningThresholdSweep(b *testing.B) {
	opts := benchOptions(ast.Python)
	c := corpus.Generate(opts.Corpus)
	var files []*core.InputFile
	for _, r := range c.Repos {
		for _, f := range r.Files {
			files = append(files, &core.InputFile{Repo: r.Name, Path: f.Path, Source: f.Source, Root: f.Root})
		}
	}
	for _, threshold := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("minCount=%d", threshold), func(b *testing.B) {
			cfg := opts.System
			cfg.Mining.MinPatternCount = threshold
			for i := 0; i < b.N; i++ {
				sys := core.NewSystem(cfg)
				sys.MinePairs(c.Commits)
				sys.ProcessFiles(files)
				sys.MinePatterns()
			}
		})
	}
}

func BenchmarkFeatureLevelAblation(b *testing.B) {
	// Train the classifier with features masked to one statistical level
	// at a time (motivates Table 9's multi-level design).
	py, _ := sharedRuns()
	var X [][]float64
	var y []int
	for _, l := range py.Violations {
		v := py.Sys.FeatureVector(l.V)
		X = append(X, v)
		if l.IsIssue() {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	masks := map[string][]int{
		"file-only": {0, 1, 3, 6, 9, 13, 14, 15, 16},
		"repo-only": {0, 2, 4, 7, 10, 13, 14, 15, 16},
		"all":       nil,
	}
	for name, keep := range masks {
		b.Run(name, func(b *testing.B) {
			Z := X
			if keep != nil {
				Z = make([][]float64, len(X))
				for i, row := range X {
					masked := make([]float64, len(keep))
					for j, idx := range keep {
						masked[j] = row[idx]
					}
					Z[i] = masked
				}
			}
			for i := 0; i < b.N; i++ {
				p := &ml.Pipeline{NewModel: func() ml.Classifier { return &ml.LinearSVM{Epochs: 50, Seed: 9} }}
				p.Fit(Z, y)
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkPythonParse(b *testing.B) {
	c := corpus.Generate(corpus.Config{Lang: ast.Python, Seed: 7, Repos: 1, FilesPerRepo: 1})
	src := c.Repos[0].Files[0].Source
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := pylang.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJavaParse(b *testing.B) {
	c := corpus.Generate(corpus.Config{Lang: ast.Java, Seed: 7, Repos: 1, FilesPerRepo: 1})
	src := c.Repos[0].Files[0].Source
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := javalang.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatalogTransitiveClosure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := datalog.NewEngine()
		e.MustParse(`
			Path(X, Y) :- Edge(X, Y).
			Path(X, Z) :- Path(X, Y), Edge(Y, Z).
		`)
		for v := 0; v < 30; v++ {
			e.Assert("Edge", fmt.Sprint(v), fmt.Sprint(v+1))
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubtokenSplit(b *testing.B) {
	names := []string{"assertTrue", "rotated_picture_name", "HTTPServerResponse", "x"}
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			subtoken.Split(n)
		}
	}
}

func BenchmarkEditDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		textutil.EditDistance("progDialog", "progressDialog")
	}
}

// --- §5.6 synthetic accuracy (standalone alias for the DESIGN.md index) ---

func BenchmarkSyntheticAccuracy(b *testing.B) {
	py, _ := sharedRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := py.NeuralComparison(neuralBenchOptions(), 20)
		if len(res) != 2 || res[0].Synthetic.Classification == 0 {
			b.Fatal("synthetic accuracy not measured")
		}
	}
}

// --- Go front end (the §5.1 genericity claim) ---

func BenchmarkGoParse(b *testing.B) {
	data, err := os.ReadFile("internal/golang/golang.go")
	if err != nil {
		b.Fatal(err)
	}
	src := string(data)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := golang.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfScanFile(b *testing.B) {
	data, err := os.ReadFile("internal/golang/golang.go")
	if err != nil {
		b.Fatal(err)
	}
	src := string(data)
	root, err := golang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sys := core.NewSystem(core.DefaultConfig(ast.Go))
	in := &core.InputFile{Repo: "self", Path: "golang.go", Source: src, Root: root}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ProcessFile(in)
	}
}
